#include "study/runner.h"

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <initializer_list>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "engine/hash_index.h"
#include "engine/spill.h"
#include "engine/stream.h"
#include "study/checkpoint.h"

namespace spider {

namespace {

/// Columns the adjacent-snapshot diff reads: the path join plus the three
/// timestamps and mode (file/dir split, file counts).
constexpr ColumnMask kDiffColumns = kColMaskPaths | kColMaskAtime |
                                    kColMaskCtime | kColMaskMtime |
                                    kColMaskMode;

/// Rough resident bytes per decoded snapshot row (fixed columns, path and
/// OST-list bytes, per-week index overhead), used to predict a week's
/// footprint from the .scol header alone — before anything is decoded —
/// when deciding resident vs out-of-core under StudyOptions::memory_budget.
constexpr std::size_t kResidentBytesPerRow = 160;

/// Rough spilled bytes per row (41-byte record header + average path),
/// sizing the spill fan-out so a loaded partition pair stays well inside
/// the budget's slice.
constexpr std::size_t kSpillBytesPerRow = 96;

/// Bridges a StudyAnalyzer onto the engine's ScanKernel interface for the
/// week currently being analyzed.
class AnalyzerKernel : public ScanKernel {
 public:
  explicit AnalyzerKernel(StudyAnalyzer* analyzer) : analyzer_(analyzer) {}

  void set_observation(const WeekObservation* obs) { obs_ = obs; }

  std::unique_ptr<ScanChunkState> make_chunk_state() const override {
    return analyzer_->make_chunk_state();
  }
  void observe_chunk(ScanChunkState* state, const ScanMorsel& m) override {
    analyzer_->observe_chunk(state, *obs_, m);
  }
  void merge_chunks(ScanStateList states, ThreadPool*) override {
    // Analyzers take the pool through obs_->pool instead — it is the same
    // pool, and the WeekObservation carries it to the serial (non-scan)
    // observe() path too.
    analyzer_->merge(*obs_, states);
  }

 private:
  StudyAnalyzer* analyzer_;
  const WeekObservation* obs_ = nullptr;
};

/// One decoded week in flight between the visiting thread and analysis:
/// either owned outright (moved out of the source) or a pointer into a
/// fully materialized source (stable_snapshots() == true). Either way,
/// retaining the previous week is a move of this struct — the O(n)
/// per-week deep copy of the old runner is gone.
///
/// In fused-diff mode the week's partitioned index rides along: it is
/// built on the visiting thread right after decode, so with prefetch on
/// the build of week N's index overlaps week N-1's analysis, and by the
/// time week N becomes `prev` its build side is already up. The index
/// stores no table pointer (moving this struct relocates `owned`), so the
/// move is safe.
struct PendingWeek {
  std::size_t week = 0;
  Snapshot owned;
  const Snapshot* view = nullptr;
  std::unique_ptr<PartitionedPathIndex> index;
  /// Incremental mode only: the week's directory rows, indexed for the
  /// diff's directory side. Like `index`, detached from the table so the
  /// struct stays movable.
  std::unique_ptr<DetachedPathIndex> dir_index;
  /// Checkpointing only: the source's gap timeline up to (not including)
  /// this week, captured on the visiting thread — the source mutates its
  /// gap list during traversal, so the analyst thread must not read it.
  std::vector<SeriesGap> gaps_so_far;

  const Snapshot& snap() const { return view ? *view : owned; }
};

/// Ascending union of disjoint, already-ascending row lists.
std::vector<std::uint32_t> merged_union(
    std::initializer_list<std::span<const std::uint32_t>> lists) {
  std::size_t total = 0;
  for (const auto& list : lists) total += list.size();
  std::vector<std::uint32_t> out;
  out.reserve(total);
  for (const auto& list : lists) {
    out.insert(out.end(), list.begin(), list.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Structural validation of a loaded checkpoint against THIS run's
/// configuration: same hash function, same projection, same grain, and an
/// analyzer roster that lines up id-for-id with resumable state for every
/// entry. Content validation (does the checkpointed week still match the
/// source?) happens later, against the re-decoded snapshot.
Status validate_checkpoint(const StudyCheckpoint& ckpt,
                           std::span<StudyAnalyzer* const> analyzers,
                           ColumnMask columns, std::size_t grain) {
  if (ckpt.hash_probe != checkpoint_hash_probe()) {
    return Status::failed_precondition(
        "hash-function drift: the checkpoint's probe fingerprint does not "
        "match this build");
  }
  if (ckpt.columns_mask != columns) {
    return Status::failed_precondition(
        "column projection changed: checkpoint mask " +
        std::to_string(ckpt.columns_mask) + ", this run " +
        std::to_string(columns));
  }
  if (ckpt.grain != grain) {
    return Status::failed_precondition(
        "scan grain changed: checkpoint " + std::to_string(ckpt.grain) +
        ", this run " + std::to_string(grain));
  }
  if (ckpt.analyzers.size() != analyzers.size()) {
    return Status::failed_precondition(
        "analyzer roster changed: checkpoint has " +
        std::to_string(ckpt.analyzers.size()) + " analyzers, this run " +
        std::to_string(analyzers.size()));
  }
  for (std::size_t i = 0; i < analyzers.size(); ++i) {
    const AnalyzerCheckpoint& a = ckpt.analyzers[i];
    if (a.id != analyzers[i]->state_id()) {
      return Status::failed_precondition(
          "analyzer roster changed at position " + std::to_string(i) +
          ": checkpoint '" + a.id + "', this run '" +
          std::string(analyzers[i]->state_id()) + "'");
    }
    if (!a.has_state) {
      return Status::failed_precondition(
          "analyzer '" + a.id +
          "' recorded a re-baseline marker (no serializable state)");
    }
    if (a.version != analyzers[i]->state_version()) {
      return Status::failed_precondition(
          "analyzer '" + a.id + "' state version skew: checkpoint v" +
          std::to_string(a.version) + ", this build v" +
          std::to_string(analyzers[i]->state_version()));
    }
  }
  return Status();
}

/// The diff as a scan kernel (DESIGN.md §11): registered FIRST, so within
/// every chunk its probe runs before any analyzer observes the same rows,
/// and sibling kernels may read the chunk's classification through the
/// DiffChunkProvider interface. merge_chunks assembles the week's
/// DiffResult (serial, chunk-ordered) before any analyzer's merge runs —
/// merge-time consumers of obs.diff see the complete result.
class DiffScanKernel : public ScanKernel, public DiffChunkProvider {
 public:
  /// Arms the kernel for one week (null index = inactive week: no diff).
  /// Must be called before every scan — it also resets the chunk registry.
  /// On delta weeks (StudyOptions::incremental) `record_prev` turns on the
  /// prev-row mapping and `dir_index` the directory diff.
  void set_week(const PartitionedPathIndex* index, const SnapshotTable* prev,
                DiffResult* out, std::size_t grain, std::size_t cur_files,
                bool record_prev = false,
                const DetachedPathIndex* dir_index = nullptr) {
    index_ = index;
    prev_ = prev;
    out_ = out;
    cur_files_ = cur_files;
    grain_ = grain == 0 ? kScanGrainRows : grain;
    record_prev_ = record_prev;
    dir_index_ = dir_index;
    chunk_rows_.clear();
    if (index_ != nullptr && index_->size() > 0) {
      // Value-initialization zeroes the atomics (C++20).
      matched_.reset(new std::atomic<std::uint8_t>[index_->size()]());
    } else {
      matched_.reset();
    }
    if (dir_index_ != nullptr && dir_index_->size() > 0) {
      dir_matched_.reset(
          new std::atomic<std::uint8_t>[dir_index_->size()]());
    } else {
      dir_matched_.reset();
    }
  }

  std::unique_ptr<ScanChunkState> make_chunk_state() const override {
    if (index_ == nullptr) return nullptr;
    auto state = std::make_unique<DiffKernelChunk>();
    state->rows.record_prev = record_prev_;
    // make_chunk_state runs serially in chunk order before the scan, so
    // the registry index equals the chunk index.
    chunk_rows_.push_back(&state->rows);
    return state;
  }

  void observe_chunk(ScanChunkState* state, const ScanMorsel& m) override {
    if (index_ == nullptr) return;
    // The fused kernel only ever runs on resident weeks (streamed weeks
    // diff through the spill join before their scan), so the morsel's
    // base is 0 and global rows are table rows.
    const DiffDirProbe dirs{dir_index_, dir_matched_.get()};
    diff_probe_range(*index_, *prev_, *m.table, m.begin, m.end,
                     matched_.get(),
                     &static_cast<DiffKernelChunk*>(state)->rows,
                     dir_index_ != nullptr ? &dirs : nullptr);
  }

  void merge_chunks(ScanStateList, ThreadPool* pool) override {
    if (index_ == nullptr) return;
    DiffFinalizeExtras extras;
    extras.prev_rows = record_prev_;
    extras.dirs = dir_index_ != nullptr;
    if (dir_index_ != nullptr) {
      extras.prev_dir_rows = dir_index_->rows();
      extras.dir_matched = dir_matched_.get();
    }
    diff_finalize(index_->file_rows(), matched_.get(),
                  std::span<const DiffChunkRows* const>(chunk_rows_), pool,
                  out_, &extras);
    out_->prev_files = index_->size();
    out_->cur_files = cur_files_;
  }

  const DiffChunkRows* chunk_rows(std::size_t begin) const override {
    const std::size_t chunk = begin / grain_;
    return chunk < chunk_rows_.size() ? chunk_rows_[chunk] : nullptr;
  }

 private:
  struct DiffKernelChunk : ScanChunkState {
    DiffChunkRows rows;
  };

  const PartitionedPathIndex* index_ = nullptr;
  const SnapshotTable* prev_ = nullptr;
  DiffResult* out_ = nullptr;
  std::size_t grain_ = kScanGrainRows;
  std::size_t cur_files_ = 0;
  bool record_prev_ = false;
  const DetachedPathIndex* dir_index_ = nullptr;
  mutable std::vector<const DiffChunkRows*> chunk_rows_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> matched_;
  std::unique_ptr<std::atomic<std::uint8_t>[]> dir_matched_;
};

}  // namespace

void run_study(SnapshotSource& source,
               std::span<StudyAnalyzer* const> analyzers,
               const StudyOptions& options) {
  bool need_diff = false;
  bool any_delta = false;
  ColumnMask columns = kColMaskNone;
  for (StudyAnalyzer* analyzer : analyzers) {
    need_diff = need_diff || analyzer->wants_diff();
    any_delta = any_delta || analyzer->supports_delta();
    columns |= analyzer->columns_needed();
  }
  // Incremental mode is diff-driven: the WeekDelta is built from the
  // classification even for analyzers that never asked for the diff.
  const bool incremental = options.incremental && any_delta;
  if (incremental) need_diff = true;
  if (need_diff) columns |= kDiffColumns;
  source.set_columns(columns);

  const bool fuse = need_diff && options.fuse_diff;

  std::vector<AnalyzerKernel> kernels;
  kernels.reserve(analyzers.size());
  for (StudyAnalyzer* analyzer : analyzers) kernels.emplace_back(analyzer);
  DiffScanKernel diff_kernel;
  // Two kernel rosters: the full one for scan (re-baseline) weeks, and —
  // in incremental mode — a reduced one for delta weeks that leaves the
  // delta-capable analyzers out of the shared scan entirely. The diff
  // kernel must be first in both: sibling kernels read its per-chunk
  // output during the scan (see DiffChunkProvider).
  std::vector<ScanKernel*> kernel_ptrs;
  std::vector<ScanKernel*> scan_only_kernel_ptrs;
  // A third roster for weeks whose diff was computed through the spill
  // join BEFORE the scan (streamed weeks and their successors): every
  // analyzer, but not the fused diff kernel — obs.diff is already final
  // and analyzers consume it unfused (obs.diff_chunks stays null).
  std::vector<ScanKernel*> unfused_kernel_ptrs;
  kernel_ptrs.reserve(kernels.size() + 1);
  unfused_kernel_ptrs.reserve(kernels.size());
  if (fuse) {
    kernel_ptrs.push_back(&diff_kernel);
    scan_only_kernel_ptrs.push_back(&diff_kernel);
  }
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    kernel_ptrs.push_back(&kernels[i]);
    unfused_kernel_ptrs.push_back(&kernels[i]);
    if (!analyzers[i]->supports_delta()) {
      scan_only_kernel_ptrs.push_back(&kernels[i]);
    }
  }

  ScanOptions scan_options;
  scan_options.grain = options.grain;
  scan_options.pool = options.pool;

  // --- Checkpoint setup (DESIGN.md §14) ---
  CheckpointReport scratch_report;
  CheckpointReport* report =
      options.checkpoint_report != nullptr ? options.checkpoint_report
                                           : &scratch_report;
  *report = CheckpointReport{};
  const bool ckpt_wanted = !options.checkpoint.path.empty();
  // The checkpoint serializes the incremental engine's retained state; a
  // pure scan run has nothing worth saving, so checkpointing rides on
  // incremental mode only.
  const bool ckpt_enabled = ckpt_wanted && incremental;
  if (ckpt_wanted && !incremental) {
    report->rebaseline_reason =
        "checkpointing requires incremental mode; running without";
  }
  const std::size_t ckpt_every =
      options.checkpoint.every == 0 ? 1 : options.checkpoint.every;

  // --- Out-of-core mode (DESIGN.md §15) ---
  // A fully materialized source has nothing to stream, and a checkpointed
  // run fingerprints whole tables, so both force every week resident.
  const bool stable = source.stable_snapshots();
  bool out_of_core = options.streaming && options.memory_budget > 0 &&
                     !ckpt_enabled && !stable;
  namespace fs = std::filesystem;
  std::string spill_dir;
  if (out_of_core && need_diff) {
    // Scratch directory for the spill join's partition files, private to
    // this run. If no scratch space exists the budget cannot be honored;
    // falling back to resident keeps the results correct.
    static std::atomic<std::uint64_t> run_counter{0};
    std::error_code ec;
    const fs::path base = fs::temp_directory_path(ec);
    if (!ec) {
      const fs::path dir =
          base / ("spider-spill-" +
                  std::to_string(static_cast<unsigned long>(::getpid())) +
                  "-" + std::to_string(run_counter.fetch_add(1)));
      fs::create_directories(dir, ec);
      if (!ec) spill_dir = dir.string();
    }
    if (spill_dir.empty()) out_of_core = false;
  }

  StudyCheckpoint restored;
  bool resume_pending = false;
  if (ckpt_enabled && options.checkpoint.resume) {
    Status s = load_checkpoint(options.checkpoint.path, &restored);
    if (s.ok()) {
      s = validate_checkpoint(restored, analyzers, columns, options.grain);
    }
    if (s.ok()) {
      resume_pending = true;
    } else if (s.code() != StatusCode::kNotFound) {
      // A missing checkpoint is an ordinary fresh run; anything else —
      // corruption, truncation, version skew, roster drift — is a
      // re-baseline worth reporting.
      report->rebaseline_reason = s.to_string();
    }
  }

  // Analysis state. Touched only by whichever thread runs analyze() —
  // the caller without prefetch, the pipeline thread with it. (In
  // out-of-core mode the whole pass is synchronous on the visiting
  // thread, so there is exactly one toucher either way.)
  PendingWeek prev;
  bool have_prev = false;
  std::size_t last_week = 0;
  bool resume_failed = false;
  std::size_t weeks_since_ckpt = 0;

  // Out-of-core bookkeeping. When the previous week streamed, its rows
  // survive only as spill partitions: prev.snap().table is an empty shell
  // and the next diff goes through spill_diff_join whichever way the
  // current week arrives.
  SpilledSide prev_spill;
  bool have_prev_spill = false;
  bool prev_streamed = false;
  std::uint64_t spill_seq = 0;

  auto drop_prev_spill = [&] {
    if (!have_prev_spill) return;
    for (const std::string& f : prev_spill.files) {
      std::error_code ec;
      fs::remove(f, ec);
    }
    prev_spill = SpilledSide{};
    have_prev_spill = false;
  };

  // Spills a RESIDENT table for one side of an out-of-core join. The
  // regenerate hook re-derives the whole side from the table (identical
  // bytes — the spill is deterministic), so checksum damage in scratch
  // files heals as long as the table is alive, which it is for the
  // duration of the join.
  auto spill_table = [&](const SnapshotTable& table, std::uint32_t bits,
                         SpilledSide* out) -> Status {
    SpillPartitionWriter::Options wopts;
    wopts.dir = spill_dir;
    wopts.stem = "s" + std::to_string(spill_seq++);
    wopts.bits = bits;
    SpillPartitionWriter writer;
    Status s = writer.open(wopts);
    if (s.ok()) s = writer.add_table(table);
    if (s.ok()) s = writer.finish();
    if (!s.ok()) return s;
    *out = writer.side();
    out->regenerate = [&table, wopts](std::size_t) -> Status {
      SpillPartitionWriter w;
      Status rs = w.open(wopts);
      if (rs.ok()) rs = w.add_table(table);
      if (rs.ok()) rs = w.finish();
      return rs;
    };
    return Status();
  };

  auto write_checkpoint = [&]() {
    StudyCheckpoint ckpt;
    ckpt.week = prev.week;
    ckpt.taken_at = prev.snap().taken_at;
    ckpt.degraded = prev.snap().degraded;
    ckpt.table_fingerprint = table_fingerprint(prev.snap().table, columns);
    ckpt.columns_mask = columns;
    ckpt.grain = options.grain;
    ckpt.hash_probe = checkpoint_hash_probe();
    // Keep pre-resume damage alive across checkpoint generations: the
    // source never re-read those weeks, so its own gap list cannot
    // contain them.
    ckpt.gaps = report->restored_gaps.empty()
                    ? prev.gaps_so_far
                    : merge_gap_timelines(report->restored_gaps,
                                          prev.gaps_so_far);
    ckpt.analyzers.reserve(analyzers.size());
    for (StudyAnalyzer* analyzer : analyzers) {
      AnalyzerCheckpoint a;
      a.id = std::string(analyzer->state_id());
      a.version = analyzer->state_version();
      StateWriter w(&a.blob);
      a.has_state = analyzer->save_state(w);
      if (!a.has_state) a.blob.clear();
      ckpt.analyzers.push_back(std::move(a));
    }
    // Best-effort: a failed write leaves the previous checkpoint on disk
    // intact (atomic replace), and the study itself continues.
    if (save_checkpoint(options.checkpoint.path, ckpt).ok()) {
      ++report->checkpoints_written;
    } else {
      ++report->write_failures;
    }
  };

  // Content validation + state restore against the re-decoded
  // checkpointed week. On success the week becomes `prev` without being
  // analyzed (it already was, before the crash). Any mismatch abandons
  // the resume with analyzer state untouched.
  auto try_resume = [&](const PendingWeek& cur) -> bool {
    if (cur.week != restored.week ||
        cur.snap().taken_at != restored.taken_at ||
        cur.snap().degraded != restored.degraded ||
        table_fingerprint(cur.snap().table, columns) !=
            restored.table_fingerprint) {
      report->rebaseline_reason =
          "checkpointed week " + std::to_string(restored.week) +
          " no longer matches the source (position or content changed)";
      return false;
    }
    for (std::size_t i = 0; i < analyzers.size(); ++i) {
      StateReader r(restored.analyzers[i].blob);
      if (!analyzers[i]->load_state(r) || !r.exhausted()) {
        // Unreachable short of a bug: the blob passed its section
        // checksum and its version check. load_state is atomic per
        // analyzer, so falling back to the full run is the best effort.
        report->rebaseline_reason = "analyzer '" +
                                    restored.analyzers[i].id +
                                    "' failed to restore its state";
        return false;
      }
    }
    report->resumed = true;
    report->resumed_week = static_cast<std::size_t>(restored.week);
    report->restored_gaps = std::move(restored.gaps);
    return true;
  };

  auto analyze = [&](PendingWeek&& cur) {
    if (resume_failed) return;  // draining an abandoned resume traversal
    if (resume_pending) {
      resume_pending = false;
      if (try_resume(cur)) {
        prev = std::move(cur);
        have_prev = true;
        last_week = prev.week;
        return;
      }
      resume_failed = true;
      return;
    }
    WeekObservation obs;
    obs.week = cur.week;
    obs.snap = &cur.snap();
    obs.prev = have_prev ? &prev.snap() : nullptr;
    obs.gap_before = have_prev && cur.week != last_week + 1;
    obs.pool = options.pool;
    obs.flat_agg = options.flat_agg;
    obs.incremental = incremental;
    obs.row_count = cur.snap().table.size();
    obs.file_count = cur.snap().table.file_count();
    obs.dir_count = cur.snap().table.dir_count();

    DiffResult diff;
    const bool diff_active = need_diff && have_prev && !obs.gap_before;
    // A salvage-damaged snapshot (on either side of the diff) forces a
    // full-scan re-baseline: the diff still runs — the scan-path access
    // accounting is unchanged — but the delta consumers fall back to their
    // kernels and rebuild retained state. A streamed previous week also
    // re-baselines: its table is a shell, so neither the prev-row mapping
    // nor the retained-state upkeep that week could run is available.
    const bool delta_active =
        incremental && diff_active && !cur.snap().degraded &&
        !prev.snap().degraded && !prev_streamed;
    if (diff_active && prev_streamed) {
      // The previous week exists only as spill partitions: spill the
      // current (resident) table at the retained side's fan-out and join
      // on disk. Consumed unfused — obs.diff is final before the scan.
      SpilledSide cur_side;
      Status s = spill_table(cur.snap().table, prev_spill.bits, &cur_side);
      if (s.ok()) {
        s = spill_diff_join(prev_spill, cur_side, DiffOptions{}, &diff);
      }
      for (const std::string& f : cur_side.files) {
        std::error_code ec;
        fs::remove(f, ec);
      }
      if (s.ok()) {
        obs.diff = &diff;
      } else {
        // Unrecoverable scratch damage. Analyze the week as if preceded
        // by a gap — diff-based analyzers annotate it instead of the
        // whole study failing.
        obs.gap_before = true;
      }
    } else if (fuse) {
      diff_kernel.set_week(diff_active ? prev.index.get() : nullptr,
                           diff_active ? &prev.snap().table : nullptr,
                           diff_active ? &diff : nullptr, options.grain,
                           obs.file_count,
                           /*record_prev=*/delta_active,
                           delta_active ? prev.dir_index.get() : nullptr);
      if (diff_active) {
        obs.diff = &diff;
        obs.diff_chunks = &diff_kernel;
      }
    } else if (diff_active) {
      DiffOptions diff_options;
      diff_options.prev_rows = delta_active;
      diff_options.dirs = delta_active;
      diff = diff_snapshots(prev.snap().table, cur.snap().table, options.pool,
                            /*breakdown=*/nullptr, diff_options);
      obs.diff = &diff;
    }

    for (AnalyzerKernel& kernel : kernels) kernel.set_observation(&obs);
    // After a streamed week the fused diff kernel was never armed, so it
    // must sit the scan out (its chunk registry is stale).
    scan_table(cur.snap().table,
               delta_active          ? scan_only_kernel_ptrs
               : prev_streamed && fuse ? unfused_kernel_ptrs
                                       : kernel_ptrs,
               scan_options);

    if (delta_active) {
      WeekDelta delta;
      delta.diff = &diff;
      delta.prev = &prev.snap().table;
      delta.cur = &cur.snap().table;
      delta.added_rows = merged_union({diff.new_rows, diff.new_dir_rows});
      delta.touched_rows = merged_union(
          {delta.added_rows, diff.updated_rows, diff.changed_dir_rows});
      for (StudyAnalyzer* analyzer : analyzers) {
        if (analyzer->supports_delta()) analyzer->apply_delta(obs, delta);
      }
    }

    prev = std::move(cur);
    have_prev = true;
    last_week = prev.week;
    drop_prev_spill();
    prev_streamed = false;

    if (ckpt_enabled && ++weeks_since_ckpt >= ckpt_every) {
      weeks_since_ckpt = 0;
      write_checkpoint();
    }
  };

  // One out-of-core week, synchronous on the visiting thread (the group
  // reader lives only for the duration of the visit). Two passes over the
  // mapped image:
  //
  //   Pass A (serial, group order): decode each group into a recycled
  //   staging table, replaying the eager decoder's salvage accounting
  //   verbatim (note_success / dispose_failure — scol.h documents the
  //   replay contract), spill the diff-relevant columns partition-wise,
  //   and count rows/files/dirs for merge-time sizing. A fatal verdict
  //   (strict policy) returns the raw status: the source records a gap
  //   byte-identical to the eager path's.
  //
  //   Pass B: the shared analyzer scan, fed group-at-a-time through
  //   ScolMorselSource with the damaged groups masked out. The diff was
  //   joined through the spill layer between the passes, so obs.diff is
  //   final before any kernel runs (unfused consumption).
  auto analyze_streamed = [&](const WeekGroupStream& stream) -> Status {
    const ScolGroupReader& reader = *stream.reader;
    SalvageReport sreport = reader.make_report();
    std::vector<std::uint8_t> skip(reader.group_count(), 0);
    const bool spilling = need_diff;
    const std::uint32_t bits =
        have_prev_spill ? prev_spill.bits
                        : spill_bits_for(reader.rows(), kSpillBytesPerRow,
                                         options.memory_budget / 4);
    SpillPartitionWriter writer;
    SpillPartitionWriter::Options wopts;
    if (spilling) {
      wopts.dir = spill_dir;
      wopts.stem = "s" + std::to_string(spill_seq++);
      wopts.bits = bits;
      const Status s = writer.open(wopts);
      if (!s.ok()) return s;
    }
    std::size_t rows = 0, files = 0, dirs = 0;
    SnapshotTable staging;
    for (std::size_t g = 0; g < reader.group_count(); ++g) {
      staging.clear();
      Status s = reader.decode_group(g, &staging);
      if (!s.ok()) {
        s = reader.dispose_failure(g, std::move(s), &sreport);
        if (!s.ok()) return s;
        skip[g] = 1;
        continue;
      }
      reader.note_success(g, &sreport);
      if (spilling) {
        // Global row numbers continue across surviving groups only — the
        // row numbering the eager salvage splice produces.
        s = writer.add_table(staging, rows);
        if (!s.ok()) return s;
      }
      rows += staging.size();
      files += staging.file_count();
      dirs += staging.dir_count();
    }
    if (spilling) {
      const Status s = writer.finish();
      if (!s.ok()) return s;
    }

    PendingWeek cur;
    cur.week = stream.week;
    cur.owned.taken_at = stream.taken_at;
    cur.owned.degraded = !sreport.clean();

    WeekObservation obs;
    obs.week = cur.week;
    obs.snap = &cur.snap();
    obs.prev = have_prev ? &prev.snap() : nullptr;
    obs.gap_before = have_prev && cur.week != last_week + 1;
    obs.pool = options.pool;
    obs.flat_agg = options.flat_agg;
    // Retained delta state cannot be rebuilt from a shell table, so the
    // upkeep is skipped here; the next resident week re-baselines (the
    // delta_active gate in analyze()).
    obs.incremental = false;
    obs.row_count = rows;
    obs.file_count = files;
    obs.dir_count = dirs;

    DiffResult diff;
    const bool diff_active = need_diff && have_prev && !obs.gap_before;
    if (diff_active) {
      SpilledSide cur_side = writer.side();
      cur_side.regenerate = [&](std::size_t) -> Status {
        // Re-derives every partition from the mapped image; the spill is
        // deterministic, so the rewrite is byte-identical.
        SpillPartitionWriter w;
        Status rs = w.open(wopts);
        std::size_t base = 0;
        SnapshotTable t;
        for (std::size_t g = 0; rs.ok() && g < reader.group_count(); ++g) {
          if (skip[g]) continue;
          t.clear();
          rs = reader.decode_group(g, &t);
          if (rs.ok()) rs = w.add_table(t, base);
          base += t.size();
        }
        if (rs.ok()) rs = w.finish();
        return rs;
      };
      SpilledSide prev_side;
      bool prev_side_scratch = false;
      Status s;
      if (prev_streamed) {
        prev_side = prev_spill;
      } else {
        s = spill_table(prev.snap().table, bits, &prev_side);
        prev_side_scratch = true;
      }
      if (s.ok()) {
        s = spill_diff_join(prev_side, cur_side, DiffOptions{}, &diff);
      }
      if (prev_side_scratch) {
        for (const std::string& f : prev_side.files) {
          std::error_code ec;
          fs::remove(f, ec);
        }
      }
      if (s.ok()) {
        obs.diff = &diff;
      } else {
        obs.gap_before = true;  // same degradation as the resident arm
      }
    }

    for (AnalyzerKernel& kernel : kernels) kernel.set_observation(&obs);
    {
      ScolMorselSource::Options mopts;
      mopts.pool = options.pool;
      mopts.prefetch = options.prefetch;
      mopts.skip = skip;
      ScolMorselSource msource(&reader, std::move(mopts));
      const Status s = scan_stream(msource, unfused_kernel_ptrs,
                                   scan_options);
      if (!s.ok()) {
        // A group that validated in pass A failed in pass B — scratch or
        // mapping-level I/O decay. No analyzer merged (scan_stream aborts
        // before merges), so gapping the week keeps the study consistent.
        writer.remove_files();
        return s;
      }
    }

    prev = std::move(cur);
    have_prev = true;
    last_week = prev.week;
    drop_prev_spill();
    prev_streamed = true;
    if (spilling) {
      // Retained for the next week's join. No regenerate: the reader dies
      // with this visit, so trailer checksums are the only line of
      // defense from here on.
      prev_spill = writer.side();
      have_prev_spill = true;
    }
    return Status();
  };

  // Streams any week whose predicted footprint overflows its slice of the
  // budget (half for the current week, half for the retained previous
  // one).
  auto stream_chooser = [&](std::size_t, std::int64_t,
                            std::uint64_t rows_hint) {
    return rows_hint >
           options.memory_budget / 2 / kResidentBytesPerRow;
  };

  // In fused mode every decoded week gets its partitioned index here, on
  // the visiting thread: the week is the NEXT diff's build side, and with
  // prefetch on this build overlaps the current week's analysis. (The
  // mutex hand-off of the prefetch slot sequences the build before any
  // probe of it.)
  auto attach_index = [&](PendingWeek& pending) {
    if (fuse) {
      pending.index = std::make_unique<PartitionedPathIndex>(
          pending.snap().table, options.pool);
      if (incremental) {
        pending.dir_index = std::make_unique<DetachedPathIndex>(
            pending.snap().table, dir_rows_of(pending.snap().table));
      }
    }
  };
  // Checkpointing only: snapshot the source's gap list (the visiting
  // thread is the one mutating it, so reading it here is race-free) up to
  // this week, for the analyst thread's checkpoint writes.
  auto capture_gaps = [&](PendingWeek& pending) {
    if (!ckpt_enabled) return;
    for (const SeriesGap& gap : source.gaps()) {
      if (gap.week < pending.week) pending.gaps_so_far.push_back(gap);
    }
  };
  auto make_pending_const = [&](std::size_t week, const Snapshot& snap) {
    PendingWeek pending;
    pending.week = week;
    pending.view = &snap;
    attach_index(pending);
    capture_gaps(pending);
    return pending;
  };
  auto make_pending_move = [&](std::size_t week, Snapshot&& snap) {
    PendingWeek pending;
    pending.week = week;
    pending.owned = std::move(snap);
    attach_index(pending);
    capture_gaps(pending);
    return pending;
  };

  auto run_pass = [&](std::size_t first_slot) {
    if (out_of_core) {
      // Streamed weeks must be analyzed during the visit — the group
      // reader lives only that long — so the whole pass runs on the
      // visiting thread. The depth-1 week double-buffer is traded for the
      // group-level decode-ahead inside each streamed week's scan
      // (ScolMorselSource honors options.prefetch).
      source.visit_streaming(first_slot, stream_chooser,
                             [&](std::size_t week, Snapshot&& snap) {
                               analyze(make_pending_move(week,
                                                         std::move(snap)));
                             },
                             analyze_streamed);
      return;
    }
    if (!options.prefetch) {
      if (stable) {
        source.visit_from(first_slot,
                          [&](std::size_t week, const Snapshot& snap) {
                            analyze(make_pending_const(week, snap));
                          });
      } else {
        source.visit_move_from(first_slot,
                               [&](std::size_t week, Snapshot&& snap) {
                                 analyze(
                                     make_pending_move(week, std::move(snap)));
                               });
      }
      return;
    }
    // Depth-1 double buffer: the caller keeps visiting (decoding) while a
    // pipeline thread analyzes, one week in flight. Analysis still runs
    // strictly in arrival order on a single thread, so results are
    // identical with prefetch on or off.
    std::mutex mu;
    std::condition_variable slot_free, slot_filled;
    std::optional<PendingWeek> slot;
    bool done = false;

    std::thread analyst([&] {
      for (;;) {
        std::unique_lock<std::mutex> lock(mu);
        slot_filled.wait(lock, [&] { return slot.has_value() || done; });
        if (!slot.has_value()) return;
        PendingWeek cur = std::move(*slot);
        slot.reset();
        slot_free.notify_one();
        lock.unlock();
        analyze(std::move(cur));
      }
    });

    auto enqueue = [&](PendingWeek&& pending) {
      std::unique_lock<std::mutex> lock(mu);
      slot_free.wait(lock, [&] { return !slot.has_value(); });
      slot = std::move(pending);
      slot_filled.notify_one();
    };

    if (stable) {
      source.visit_from(first_slot,
                        [&](std::size_t week, const Snapshot& snap) {
                          enqueue(make_pending_const(week, snap));
                        });
    } else {
      source.visit_move_from(first_slot,
                             [&](std::size_t week, Snapshot&& snap) {
                               enqueue(
                                   make_pending_move(week, std::move(snap)));
                             });
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      done = true;
      slot_filled.notify_one();
    }
    analyst.join();
  };

  run_pass(resume_pending ? static_cast<std::size_t>(restored.week) : 0);
  if (resume_pending || resume_failed) {
    // The resume never materialized: either validation failed at the
    // first arriving week, or no week at or past the checkpointed slot
    // arrived at all (the file vanished or decayed into a gap). Analyzer
    // state is untouched in both cases, so the full run is correct.
    if (resume_pending && report->rebaseline_reason.empty()) {
      report->rebaseline_reason =
          "checkpointed week " + std::to_string(restored.week) +
          " never arrived from the source";
    }
    resume_pending = false;
    resume_failed = false;
    prev = PendingWeek{};
    have_prev = false;
    last_week = 0;
    weeks_since_ckpt = 0;
    run_pass(0);
  }

  for (StudyAnalyzer* analyzer : analyzers) analyzer->finish();
  drop_prev_spill();
  if (!spill_dir.empty()) {
    std::error_code ec;
    fs::remove_all(spill_dir, ec);
  }
}

void run_study(SnapshotSource& source, StudyAnalyzer& analyzer,
               const StudyOptions& options) {
  StudyAnalyzer* list[] = {&analyzer};
  run_study(source, list, options);
}

}  // namespace spider
