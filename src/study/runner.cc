#include "study/runner.h"

namespace spider {

namespace {

/// Deep-copies a snapshot (tables are move-only; the runner needs to
/// retain the previous week after the source reclaims its buffer).
Snapshot copy_snapshot(const Snapshot& snap) {
  Snapshot copy;
  copy.taken_at = snap.taken_at;
  copy.table.reserve(snap.table.size());
  for (std::size_t i = 0; i < snap.table.size(); ++i) {
    copy.table.add(snap.table.path(i), snap.table.atime(i),
                   snap.table.ctime(i), snap.table.mtime(i),
                   snap.table.uid(i), snap.table.gid(i), snap.table.mode(i),
                   snap.table.inode(i), snap.table.osts(i));
  }
  return copy;
}

}  // namespace

void run_study(SnapshotSource& source,
               std::span<StudyAnalyzer* const> analyzers) {
  bool need_diff = false;
  for (StudyAnalyzer* analyzer : analyzers) {
    need_diff = need_diff || analyzer->wants_diff();
  }

  auto prev = std::make_unique<Snapshot>();
  bool have_prev = false;
  std::size_t last_week = 0;

  source.visit([&](std::size_t week, const Snapshot& snap) {
    WeekObservation obs;
    obs.week = week;
    obs.snap = &snap;
    obs.prev = have_prev ? prev.get() : nullptr;
    obs.gap_before = have_prev && week != last_week + 1;

    DiffResult diff;
    if (need_diff && have_prev && !obs.gap_before) {
      diff = diff_snapshots(prev->table, snap.table);
      obs.diff = &diff;
    }
    for (StudyAnalyzer* analyzer : analyzers) analyzer->observe(obs);

    *prev = copy_snapshot(snap);
    have_prev = true;
    last_week = week;
  });

  for (StudyAnalyzer* analyzer : analyzers) analyzer->finish();
}

void run_study(SnapshotSource& source, StudyAnalyzer& analyzer) {
  StudyAnalyzer* list[] = {&analyzer};
  run_study(source, list);
}

}  // namespace spider
