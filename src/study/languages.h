// Figs 11-12: programming-language popularity, ranked purely by counting
// files whose extensions map to a language (the paper's method, quirks
// included). Fig 11 compares the facility ranking against IEEE Spectrum;
// Fig 12 breaks language shares down per science domain.
#pragma once

#include <string>
#include <vector>

#include "engine/u64set.h"
#include "study/resolve.h"
#include "study/runner.h"

namespace spider {

struct LanguageRank {
  std::string name;
  std::uint64_t files = 0;
  int our_rank = 0;   // 1-based
  int ieee_rank = 0;  // from the IEEE Spectrum list
};

struct LanguagesResult {
  /// All languages with nonzero counts, ordered by our rank.
  std::vector<LanguageRank> ranking;
  /// counts[domain][language index into languages()] over unique files.
  std::vector<std::vector<std::uint64_t>> by_domain;
  /// Top language per domain (index into languages(); -1 when none).
  int top_language(std::size_t domain) const;
  int second_language(std::size_t domain) const;
};

class LanguagesAnalyzer : public StudyAnalyzer {
 public:
  explicit LanguagesAnalyzer(const Resolver& resolver);

  ColumnMask columns_needed() const override {
    return kColMaskPaths | kColMaskGid | kColMaskMode;
  }
  std::unique_ptr<ScanChunkState> make_chunk_state() const override;
  void observe_chunk(ScanChunkState* state, const WeekObservation& obs,
                     const ScanMorsel& m) override;
  void merge(const WeekObservation& obs, ScanStateList states) override;

  /// Serial reference path (bench baseline; see DESIGN.md §10).
  void observe(const WeekObservation& obs) override;
  /// Delta port: a matched row kept its path, so its hash is already in
  /// the first-seen set — only the week's new rows can contribute, and
  /// they arrive in the same ascending order the scan path inserts them.
  bool supports_delta() const override { return true; }
  void apply_delta(const WeekObservation& obs,
                   const WeekDelta& delta) override;
  void finish() override;

  std::string_view state_id() const override { return "languages"; }
  bool save_state(StateWriter& w) const override;
  bool load_state(StateReader& r) override;

  const LanguagesResult& result() const { return result_; }
  std::string render() const;

 private:
  const Resolver& resolver_;
  U64Set distinct_;
  std::vector<std::uint64_t> global_;
  LanguagesResult result_;
};

}  // namespace spider
