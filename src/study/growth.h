// Fig 15: growth of the live file and directory populations across the
// study — the paper's 200M -> 1B file curve with a comparatively flat
// directory count (<10% of entries in late snapshots).
#pragma once

#include <string>
#include <vector>

#include "study/runner.h"

namespace spider {

struct GrowthPoint {
  std::int64_t date = 0;
  std::uint64_t files = 0;
  std::uint64_t dirs = 0;
  /// Week follows one or more series gaps: the point is sound (counts are
  /// per-snapshot, not per-diff) but the step from the previous point
  /// spans more than one collection interval.
  bool after_gap = false;
};

struct GrowthResult {
  std::vector<GrowthPoint> points;
  double growth_factor = 0;       // last files / first files
  double final_dir_share = 0;     // dirs / entries at the last snapshot
  std::size_t gap_weeks = 0;      // points flagged after_gap
};

class GrowthAnalyzer : public StudyAnalyzer {
 public:
  /// Week-level only: O(1) per snapshot off the table's file/dir counters
  /// (which the decoder derives from mode), so no chunk state — the
  /// default merge() forwards to observe() once a week.
  ColumnMask columns_needed() const override { return kColMaskMode; }
  void observe(const WeekObservation& obs) override;
  /// Already O(1) per week with no retained row state, so the delta port
  /// is observe() itself — declaring support keeps the analyzer out of
  /// the shared scan on delta weeks.
  bool supports_delta() const override { return true; }
  void apply_delta(const WeekObservation& obs, const WeekDelta&) override {
    observe(obs);
  }
  void finish() override;

  std::string_view state_id() const override { return "growth"; }
  bool save_state(StateWriter& w) const override;
  bool load_state(StateReader& r) override;

  const GrowthResult& result() const { return result_; }
  std::string render() const;

 private:
  GrowthResult result_;
};

}  // namespace spider
