// Fig 6: user participation across projects — CDF of projects per user,
// CDF of users per project, and per-domain median users per project.
// Membership is *observed from the snapshots* (a user participates in a
// project when they own entries under it), exactly as the paper built its
// file-generation network. The observed edges feed the network and
// collaboration analyzers downstream.
#pragma once

#include <string>
#include <vector>

#include "engine/u64set.h"
#include "graph/bipartite.h"
#include "study/resolve.h"
#include "study/runner.h"
#include "util/stats.h"

namespace spider {

struct ParticipationResult {
  std::vector<MembershipEdge> observed;  // dense (user, project) pairs
  EmpiricalCdf projects_per_user;
  EmpiricalCdf users_per_project;
  std::vector<double> median_users_by_domain;  // 0 when domain inactive
  double mean_users_per_project = 0;
  double frac_multi_project_users = 0;  // participate in > 1 project
  double frac_gt2_project_users = 0;    // > 2 projects
  double frac_ge8_project_users = 0;    // >= 8 projects
  std::size_t active_users = 0;
  std::size_t active_projects = 0;

  /// Per-project member lists (dense project index -> dense user indices).
  std::vector<std::vector<std::uint32_t>> project_members;
};

class ParticipationAnalyzer : public StudyAnalyzer {
 public:
  explicit ParticipationAnalyzer(const Resolver& resolver);

  ColumnMask columns_needed() const override {
    return kColMaskUid | kColMaskGid;
  }
  std::unique_ptr<ScanChunkState> make_chunk_state() const override;
  void observe_chunk(ScanChunkState* state, const WeekObservation& obs,
                     const ScanMorsel& m) override;
  void merge(const WeekObservation& obs, ScanStateList states) override;

  /// Serial reference path (bench baseline; see DESIGN.md §10).
  void observe(const WeekObservation& obs) override;
  /// Delta port: a (user, project) pair new to the study can only ride on
  /// a row whose uid/gid differ from last week, and POSIX moves ctime on
  /// chown/chgrp — so readonly and untouched rows cannot carry new pairs
  /// and only the week's touched rows need probing.
  bool supports_delta() const override { return true; }
  void apply_delta(const WeekObservation& obs,
                   const WeekDelta& delta) override;
  void finish() override;

  std::string_view state_id() const override { return "participation"; }
  bool save_state(StateWriter& w) const override;
  bool load_state(StateReader& r) override;

  const ParticipationResult& result() const { return result_; }
  std::string render() const;

 private:
  const Resolver& resolver_;
  U64Set pairs_;
  ParticipationResult result_;
};

}  // namespace spider
