#include "study/extensions.h"

#include <algorithm>
#include <sstream>

#include "snapshot/record.h"
#include "util/table.h"
#include "util/timeutil.h"

namespace spider {

ExtensionsAnalyzer::ExtensionsAnalyzer(const Resolver& resolver,
                                       std::size_t top_k)
    : resolver_(resolver),
      top_k_(top_k),
      unique_by_domain_(domain_count()) {}

namespace {
struct ExtensionsCandidate {
  std::uint64_t hash = 0;
  std::int32_t domain = -1;
  std::string ext;  // empty = extensionless
};

struct ExtensionsChunk : ScanChunkState {
  CountMap<std::string> weekly;  // every file row in the chunk
  std::uint64_t files = 0;
  std::uint64_t none = 0;
  std::vector<ExtensionsCandidate> candidates;  // row order
  U64Set local;
};
}  // namespace

std::unique_ptr<ScanChunkState> ExtensionsAnalyzer::make_chunk_state() const {
  return std::make_unique<ExtensionsChunk>();
}

void ExtensionsAnalyzer::observe_chunk(ScanChunkState* state,
                                       const WeekObservation& obs,
                                       std::size_t begin, std::size_t end) {
  auto* chunk = static_cast<ExtensionsChunk*>(state);
  const SnapshotTable& table = obs.snap->table;
  for (std::size_t i = begin; i < end; ++i) {
    if (table.is_dir(i)) continue;
    const std::string_view ext = path_extension(table.path(i));
    ++chunk->files;
    if (ext.empty()) {
      ++chunk->none;
    } else {
      ++chunk->weekly[std::string(ext)];
    }
    const std::uint64_t hash = table.path_hash(i);
    if (distinct_.contains(hash) || !chunk->local.insert(hash)) continue;
    ExtensionsCandidate cand;
    cand.hash = hash;
    cand.ext = std::string(ext);
    if (!ext.empty()) cand.domain = resolver_.domain_of_gid(table.gid(i));
    chunk->candidates.push_back(std::move(cand));
  }
}

void ExtensionsAnalyzer::merge(const WeekObservation& obs,
                               ScanStateList states) {
  CountMap<std::string> weekly;
  std::uint64_t files = 0, none = 0;
  for (const auto& state : states) {
    auto* chunk = static_cast<ExtensionsChunk*>(state.get());
    files += chunk->files;
    none += chunk->none;
    merge_counts(weekly, std::move(chunk->weekly));
    for (const ExtensionsCandidate& cand : chunk->candidates) {
      if (!distinct_.insert(cand.hash)) continue;
      ++result_.unique_files;
      if (cand.ext.empty()) {
        ++result_.unique_no_extension;
      } else {
        ++unique_global_[cand.ext];
        if (cand.domain >= 0) {
          ++unique_by_domain_[static_cast<std::size_t>(cand.domain)][cand.ext];
        }
      }
    }
  }
  result_.snapshot_dates.push_back(obs.snap->taken_at);
  weekly_counts_.push_back(std::move(weekly));
  weekly_files_.push_back(files);
  weekly_none_.push_back(none);
}

void ExtensionsAnalyzer::observe(const WeekObservation& obs) {
  const SnapshotTable& table = obs.snap->table;
  CountMap<std::string> weekly;
  std::uint64_t files = 0, none = 0;
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table.is_dir(i)) continue;
    const std::string_view ext = path_extension(table.path(i));
    ++files;
    if (ext.empty()) {
      ++none;
    } else {
      ++weekly[std::string(ext)];
    }
    if (distinct_.insert(table.path_hash(i))) {
      ++result_.unique_files;
      if (ext.empty()) {
        ++result_.unique_no_extension;
      } else {
        const std::string key(ext);
        ++unique_global_[key];
        const int domain = resolver_.domain_of_gid(table.gid(i));
        if (domain >= 0) {
          ++unique_by_domain_[static_cast<std::size_t>(domain)][key];
        }
      }
    }
  }
  result_.snapshot_dates.push_back(obs.snap->taken_at);
  weekly_counts_.push_back(std::move(weekly));
  weekly_files_.push_back(files);
  weekly_none_.push_back(none);
}

void ExtensionsAnalyzer::finish() {
  result_.global_top = top_k(unique_global_, top_k_);

  result_.top3_by_domain.assign(domain_count(), {});
  for (std::size_t d = 0; d < unique_by_domain_.size(); ++d) {
    std::uint64_t domain_files = 0;
    for (const auto& [ext, count] : unique_by_domain_[d]) {
      domain_files += count;
    }
    // Extensionless files are part of the domain's denominator too; derive
    // them from the census by re-counting is avoided — shares here follow
    // the paper's Table 2 convention (percent of the domain's files).
    for (const auto& [ext, count] : top_k(unique_by_domain_[d], 3)) {
      const double pct = domain_files == 0
                             ? 0.0
                             : 100.0 * static_cast<double>(count) /
                                   static_cast<double>(domain_files);
      result_.top3_by_domain[d].emplace_back(ext, pct);
    }
  }

  const std::size_t weeks = weekly_counts_.size();
  result_.share_top.assign(weeks, std::vector<double>(result_.global_top.size(), 0.0));
  result_.share_none.assign(weeks, 0.0);
  result_.share_other.assign(weeks, 0.0);
  for (std::size_t w = 0; w < weeks; ++w) {
    const double files =
        std::max<std::uint64_t>(1, weekly_files_[w]);
    double covered = 0;
    for (std::size_t k = 0; k < result_.global_top.size(); ++k) {
      const auto it = weekly_counts_[w].find(result_.global_top[k].first);
      const double share =
          it == weekly_counts_[w].end()
              ? 0.0
              : static_cast<double>(it->second) / files;
      result_.share_top[w][k] = share;
      covered += share;
    }
    result_.share_none[w] = static_cast<double>(weekly_none_[w]) / files;
    result_.share_other[w] =
        std::max(0.0, 1.0 - covered - result_.share_none[w]);
  }
}

std::string ExtensionsAnalyzer::render() const {
  std::ostringstream os;
  const auto profiles = domain_profiles();
  os << "Table 2: top-3 extensions per domain (share of domain files)\n";
  AsciiTable t({"domain", "1st", "2nd", "3rd", "paper 1st"});
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    const auto& top = result_.top3_by_domain[d];
    if (top.empty()) continue;
    std::vector<std::string> row{profiles[d].id};
    for (std::size_t k = 0; k < 3; ++k) {
      if (k < top.size()) {
        row.push_back(top[k].first + " (" +
                      format_double(top[k].second, 1) + ")");
      } else {
        row.push_back("-");
      }
    }
    row.push_back(std::string(profiles[d].top_ext[0].ext) + " (" +
                  format_double(profiles[d].top_ext[0].percent, 1) + ")");
    t.add_row(std::move(row));
  }
  t.print(os);

  os << "\nFig 10: top-20 extension shares over time ("
     << format_with_commas(result_.unique_files) << " unique files, "
     << format_percent(static_cast<double>(result_.unique_no_extension) /
                       static_cast<double>(std::max<std::uint64_t>(
                           1, result_.unique_files)))
     << " extensionless)\n";
  AsciiTable trend({"snapshot", "none", "other", "top1", "top2", "top3",
                    "top4", "top5"});
  const std::size_t step = std::max<std::size_t>(
      1, result_.snapshot_dates.size() / 12);
  for (std::size_t w = 0; w < result_.snapshot_dates.size(); w += step) {
    std::vector<std::string> row{date_iso(result_.snapshot_dates[w]),
                                 format_percent(result_.share_none[w]),
                                 format_percent(result_.share_other[w])};
    for (std::size_t k = 0; k < 5 && k < result_.global_top.size(); ++k) {
      row.push_back(result_.global_top[k].first + " " +
                    format_percent(result_.share_top[w][k]));
    }
    trend.add_row(std::move(row));
  }
  trend.print(os);
  return os.str();
}

}  // namespace spider
