#include "study/extensions.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "snapshot/record.h"
#include "util/table.h"
#include "util/timeutil.h"

namespace spider {

ExtensionsAnalyzer::ExtensionsAnalyzer(const Resolver& resolver,
                                       std::size_t top_k)
    : resolver_(resolver),
      top_k_(top_k),
      unique_by_domain_(domain_count()) {}

namespace {

/// Dense-id counter access; the dictionary grows over the study, so each
/// count vector is only as long as the ids it has actually seen.
void bump(std::vector<std::uint64_t>& counts, std::uint32_t id,
          std::uint64_t weight) {
  if (counts.size() <= id) counts.resize(id + 1, 0);
  counts[id] += weight;
}

std::uint64_t count_at(const std::vector<std::uint64_t>& counts,
                       std::uint32_t id) {
  return id < counts.size() ? counts[id] : 0;
}

struct ExtensionsCandidate {
  std::uint64_t hash = 0;
  std::int32_t domain = -1;
  std::int32_t ext_id = -1;  // flat path: chunk-local id; -1 = extensionless
  std::string ext;           // legacy path; empty = extensionless
};

struct ExtensionsChunk : ScanChunkState {
  bool flat = false;
  // Flat path: each distinct extension in the chunk is interned ONCE into
  // the chunk-local dictionary; every other row with that extension is a
  // dense array increment. No per-row std::string, no per-row map probe.
  StringDict dict;
  std::vector<std::uint64_t> counts;  // [local id], every file row
  // Legacy path (obs.flat_agg == false): the reference string-keyed map.
  CountMap<std::string> weekly;
  std::uint64_t files = 0;
  std::uint64_t none = 0;
  std::vector<ExtensionsCandidate> candidates;  // row order
  U64Set local;
};

}  // namespace

std::unique_ptr<ScanChunkState> ExtensionsAnalyzer::make_chunk_state() const {
  return std::make_unique<ExtensionsChunk>();
}

void ExtensionsAnalyzer::observe_chunk(ScanChunkState* state,
                                       const WeekObservation& obs,
                                       const ScanMorsel& m) {
  auto* chunk = static_cast<ExtensionsChunk*>(state);
  chunk->flat = obs.flat_agg;
  const SnapshotTable& table = *m.table;
  // Rows are path-sorted, so runs of files share an extension; memoizing
  // the previous row's intern skips the hash + probe (the memo copies into
  // the chunk dictionary, so nothing outlives the staging table).
  std::string_view last_ext;
  std::uint32_t last_id = 0;
  bool have_last = false;
  for (std::size_t i = m.begin; i < m.end; ++i) {
    const std::size_t r = m.local(i);
    if (table.is_dir(r)) continue;
    const std::string_view ext = path_extension(table.path(r));
    ++chunk->files;
    std::int32_t ext_id = -1;
    if (ext.empty()) {
      ++chunk->none;
    } else if (chunk->flat) {
      if (!have_last || ext != last_ext) {
        last_id = chunk->dict.intern(ext);
        last_ext = ext;
        have_last = true;
        if (last_id == chunk->counts.size()) chunk->counts.push_back(0);
      }
      ++chunk->counts[last_id];
      ext_id = static_cast<std::int32_t>(last_id);
    } else {
      ++chunk->weekly[std::string(ext)];
    }
    const std::uint64_t hash = table.path_hash(r);
    if (distinct_.contains(hash) || !chunk->local.insert(hash)) continue;
    ExtensionsCandidate cand;
    cand.hash = hash;
    if (chunk->flat) {
      cand.ext_id = ext_id;
    } else {
      cand.ext = std::string(ext);
    }
    if (!ext.empty()) cand.domain = resolver_.domain_of_gid(table.gid(r));
    chunk->candidates.push_back(std::move(cand));
  }
}

void ExtensionsAnalyzer::merge(const WeekObservation& obs,
                               ScanStateList states) {
  std::vector<std::uint64_t> weekly;  // [study-long ext id]
  std::uint64_t files = 0, none = 0;
  for (const auto& state : states) {
    auto* chunk = static_cast<ExtensionsChunk*>(state.get());
    files += chunk->files;
    none += chunk->none;
    // Resolve the chunk's local ids against the study-long dictionary.
    // Chunks fold in chunk order and the chunk layout is thread-count
    // invariant, so the global id assignment is too.
    std::vector<std::uint32_t> local_to_global(chunk->dict.size());
    if (chunk->flat) {
      for (std::uint32_t lid = 0; lid < chunk->dict.size(); ++lid) {
        local_to_global[lid] = dict_.intern(chunk->dict.name(lid));
        bump(weekly, local_to_global[lid], chunk->counts[lid]);
      }
    } else {
      for (const auto& [ext, count] : chunk->weekly) {
        bump(weekly, dict_.intern(ext), count);
      }
    }
    for (const ExtensionsCandidate& cand : chunk->candidates) {
      if (!distinct_.insert(cand.hash)) continue;
      ++result_.unique_files;
      const bool has_ext = chunk->flat ? cand.ext_id >= 0 : !cand.ext.empty();
      if (!has_ext) {
        ++result_.unique_no_extension;
        continue;
      }
      const std::uint32_t id =
          chunk->flat ? local_to_global[static_cast<std::uint32_t>(cand.ext_id)]
                      : dict_.intern(cand.ext);
      bump(unique_global_, id, 1);
      if (cand.domain >= 0) {
        bump(unique_by_domain_[static_cast<std::size_t>(cand.domain)], id, 1);
      }
    }
  }
  result_.snapshot_dates.push_back(obs.snap->taken_at);
  weekly_counts_.push_back(std::move(weekly));
  weekly_files_.push_back(files);
  weekly_none_.push_back(none);
}

void ExtensionsAnalyzer::observe(const WeekObservation& obs) {
  const SnapshotTable& table = obs.snap->table;
  std::vector<std::uint64_t> weekly;
  std::uint64_t files = 0, none = 0;
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table.is_dir(i)) continue;
    const std::string_view ext = path_extension(table.path(i));
    ++files;
    std::int64_t id = -1;
    if (ext.empty()) {
      ++none;
    } else {
      id = dict_.intern(ext);
      bump(weekly, static_cast<std::uint32_t>(id), 1);
    }
    if (distinct_.insert(table.path_hash(i))) {
      ++result_.unique_files;
      if (id < 0) {
        ++result_.unique_no_extension;
      } else {
        bump(unique_global_, static_cast<std::uint32_t>(id), 1);
        const int domain = resolver_.domain_of_gid(table.gid(i));
        if (domain >= 0) {
          bump(unique_by_domain_[static_cast<std::size_t>(domain)],
               static_cast<std::uint32_t>(id), 1);
        }
      }
    }
  }
  result_.snapshot_dates.push_back(obs.snap->taken_at);
  weekly_counts_.push_back(std::move(weekly));
  weekly_files_.push_back(files);
  weekly_none_.push_back(none);
}

void ExtensionsAnalyzer::apply_delta(const WeekObservation& obs,
                                     const WeekDelta& delta) {
  const SnapshotTable& cur = *delta.cur;
  const SnapshotTable& prev = *delta.prev;
  // Roll the previous week's per-extension counts forward. Deleted files
  // existed last week, so their extensions are already interned and their
  // ids are covered by last week's count vector.
  std::vector<std::uint64_t> weekly = weekly_counts_.back();
  std::uint64_t files = weekly_files_.back();
  std::uint64_t none = weekly_none_.back();
  for (const std::uint32_t row : delta.diff->deleted_rows) {
    const std::string_view ext = path_extension(prev.path(row));
    --files;
    if (ext.empty()) {
      --none;
    } else {
      --weekly[dict_.intern(ext)];
    }
  }
  for (const std::uint32_t row : delta.added_rows) {
    if (cur.is_dir(row)) continue;
    const std::string_view ext = path_extension(cur.path(row));
    ++files;
    std::int64_t id = -1;
    if (ext.empty()) {
      ++none;
    } else {
      id = dict_.intern(ext);
      bump(weekly, static_cast<std::uint32_t>(id), 1);
    }
    // insert() can fail here: a deleted-then-recreated path was first seen
    // in an earlier week (same behavior as the scan path's candidate
    // filter).
    if (distinct_.insert(cur.path_hash(row))) {
      ++result_.unique_files;
      if (id < 0) {
        ++result_.unique_no_extension;
      } else {
        bump(unique_global_, static_cast<std::uint32_t>(id), 1);
        const int domain = resolver_.domain_of_gid(cur.gid(row));
        if (domain >= 0) {
          bump(unique_by_domain_[static_cast<std::size_t>(domain)],
               static_cast<std::uint32_t>(id), 1);
        }
      }
    }
  }
  result_.snapshot_dates.push_back(obs.snap->taken_at);
  weekly_counts_.push_back(std::move(weekly));
  weekly_files_.push_back(files);
  weekly_none_.push_back(none);
}

bool ExtensionsAnalyzer::save_state(StateWriter& w) const {
  distinct_.save_state(w);
  dict_.save_state(w);
  w.vec(unique_global_);
  w.vec2(unique_by_domain_);
  w.vec2(weekly_counts_);
  w.vec(weekly_files_);
  w.vec(weekly_none_);
  w.u64(result_.unique_files);
  w.u64(result_.unique_no_extension);
  w.vec(result_.snapshot_dates);
  return true;
}

bool ExtensionsAnalyzer::load_state(StateReader& r) {
  U64Set distinct;
  StringDict dict;
  std::vector<std::uint64_t> unique_global;
  std::vector<std::vector<std::uint64_t>> unique_by_domain, weekly_counts;
  std::vector<std::uint64_t> weekly_files, weekly_none;
  std::vector<std::int64_t> snapshot_dates;
  if (!distinct.load_state(r) || !dict.load_state(r) ||
      !r.vec(&unique_global) || !r.vec2(&unique_by_domain) ||
      !r.vec2(&weekly_counts) || !r.vec(&weekly_files) ||
      !r.vec(&weekly_none)) {
    return false;
  }
  const std::uint64_t unique_files = r.u64();
  const std::uint64_t unique_no_extension = r.u64();
  if (!r.vec(&snapshot_dates) || !r.ok()) return false;
  // One weekly row of each kind per analyzed snapshot, and one per-domain
  // counter vector per domain in the plan.
  if (unique_by_domain.size() != unique_by_domain_.size() ||
      weekly_counts.size() != weekly_files.size() ||
      weekly_none.size() != weekly_files.size() ||
      snapshot_dates.size() != weekly_files.size()) {
    return false;
  }
  distinct_ = std::move(distinct);
  dict_ = std::move(dict);
  unique_global_ = std::move(unique_global);
  unique_by_domain_ = std::move(unique_by_domain);
  weekly_counts_ = std::move(weekly_counts);
  weekly_files_ = std::move(weekly_files);
  weekly_none_ = std::move(weekly_none);
  result_.unique_files = unique_files;
  result_.unique_no_extension = unique_no_extension;
  result_.snapshot_dates = std::move(snapshot_dates);
  return true;
}

void ExtensionsAnalyzer::finish() {
  const auto top = top_k_dict(unique_global_, dict_, top_k_);
  result_.global_top.reserve(top.size());
  for (const auto& [id, count] : top) {
    result_.global_top.emplace_back(std::string(dict_.name(id)), count);
  }

  result_.top3_by_domain.assign(domain_count(), {});
  for (std::size_t d = 0; d < unique_by_domain_.size(); ++d) {
    std::uint64_t domain_files = 0;
    for (const std::uint64_t count : unique_by_domain_[d]) {
      domain_files += count;
    }
    // Extensionless files are part of the domain's denominator too; derive
    // them from the census by re-counting is avoided — shares here follow
    // the paper's Table 2 convention (percent of the domain's files).
    for (const auto& [id, count] : top_k_dict(unique_by_domain_[d], dict_, 3)) {
      const double pct = domain_files == 0
                             ? 0.0
                             : 100.0 * static_cast<double>(count) /
                                   static_cast<double>(domain_files);
      result_.top3_by_domain[d].emplace_back(std::string(dict_.name(id)), pct);
    }
  }

  const std::size_t weeks = weekly_counts_.size();
  result_.share_top.assign(weeks, std::vector<double>(top.size(), 0.0));
  result_.share_none.assign(weeks, 0.0);
  result_.share_other.assign(weeks, 0.0);
  for (std::size_t w = 0; w < weeks; ++w) {
    const double files =
        std::max<std::uint64_t>(1, weekly_files_[w]);
    double covered = 0;
    for (std::size_t k = 0; k < top.size(); ++k) {
      const double share =
          static_cast<double>(count_at(weekly_counts_[w], top[k].first)) /
          files;
      result_.share_top[w][k] = share;
      covered += share;
    }
    result_.share_none[w] = static_cast<double>(weekly_none_[w]) / files;
    result_.share_other[w] =
        std::max(0.0, 1.0 - covered - result_.share_none[w]);
  }
}

std::string ExtensionsAnalyzer::render() const {
  std::ostringstream os;
  const auto profiles = domain_profiles();
  os << "Table 2: top-3 extensions per domain (share of domain files)\n";
  AsciiTable t({"domain", "1st", "2nd", "3rd", "paper 1st"});
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    const auto& top = result_.top3_by_domain[d];
    if (top.empty()) continue;
    std::vector<std::string> row{profiles[d].id};
    for (std::size_t k = 0; k < 3; ++k) {
      if (k < top.size()) {
        row.push_back(top[k].first + " (" +
                      format_double(top[k].second, 1) + ")");
      } else {
        row.push_back("-");
      }
    }
    row.push_back(std::string(profiles[d].top_ext[0].ext) + " (" +
                  format_double(profiles[d].top_ext[0].percent, 1) + ")");
    t.add_row(std::move(row));
  }
  t.print(os);

  os << "\nFig 10: top-20 extension shares over time ("
     << format_with_commas(result_.unique_files) << " unique files, "
     << format_percent(static_cast<double>(result_.unique_no_extension) /
                       static_cast<double>(std::max<std::uint64_t>(
                           1, result_.unique_files)))
     << " extensionless)\n";
  AsciiTable trend({"snapshot", "none", "other", "top1", "top2", "top3",
                    "top4", "top5"});
  const std::size_t step = std::max<std::size_t>(
      1, result_.snapshot_dates.size() / 12);
  for (std::size_t w = 0; w < result_.snapshot_dates.size(); w += step) {
    std::vector<std::string> row{date_iso(result_.snapshot_dates[w]),
                                 format_percent(result_.share_none[w]),
                                 format_percent(result_.share_other[w])};
    for (std::size_t k = 0; k < 5 && k < result_.global_top.size(); ++k) {
      row.push_back(result_.global_top[k].first + " " +
                    format_percent(result_.share_top[w][k]));
    }
    trend.add_row(std::move(row));
  }
  trend.print(os);
  return os.str();
}

}  // namespace spider
