#include "study/languages.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "snapshot/record.h"
#include "synth/langmap.h"
#include "util/table.h"

namespace spider {

namespace {

int best_language(const std::vector<std::uint64_t>& counts, int excluding) {
  int best = -1;
  for (std::size_t l = 0; l < counts.size(); ++l) {
    if (static_cast<int>(l) == excluding || counts[l] == 0) continue;
    if (best < 0 || counts[l] > counts[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(l);
    }
  }
  return best;
}

}  // namespace

int LanguagesResult::top_language(std::size_t domain) const {
  return best_language(by_domain[domain], -1);
}

int LanguagesResult::second_language(std::size_t domain) const {
  return best_language(by_domain[domain], top_language(domain));
}

LanguagesAnalyzer::LanguagesAnalyzer(const Resolver& resolver)
    : resolver_(resolver), global_(languages().size(), 0) {
  result_.by_domain.assign(domain_count(),
                           std::vector<std::uint64_t>(languages().size(), 0));
}

namespace {
struct LanguagesCandidate {
  std::uint64_t hash = 0;
  // lang < 0 still claims the hash's first-seen slot (the serial path
  // inserts before mapping the extension), so unmapped rows stay in.
  std::int32_t lang = -1;
  std::int32_t domain = -1;
};

struct LanguagesChunk : ScanChunkState {
  std::vector<LanguagesCandidate> candidates;  // row order
  U64Set local;
};
}  // namespace

std::unique_ptr<ScanChunkState> LanguagesAnalyzer::make_chunk_state() const {
  return std::make_unique<LanguagesChunk>();
}

void LanguagesAnalyzer::observe_chunk(ScanChunkState* state,
                                      const WeekObservation&,
                                      const ScanMorsel& m) {
  auto* chunk = static_cast<LanguagesChunk*>(state);
  const SnapshotTable& table = *m.table;
  for (std::size_t i = m.begin; i < m.end; ++i) {
    const std::size_t r = m.local(i);
    if (table.is_dir(r)) continue;
    const std::uint64_t hash = table.path_hash(r);
    if (distinct_.contains(hash) || !chunk->local.insert(hash)) continue;
    LanguagesCandidate cand;
    cand.hash = hash;
    cand.lang = language_for_extension(path_extension(table.path(r)));
    if (cand.lang >= 0) cand.domain = resolver_.domain_of_gid(table.gid(r));
    chunk->candidates.push_back(cand);
  }
}

void LanguagesAnalyzer::merge(const WeekObservation&, ScanStateList states) {
  for (const auto& state : states) {
    const auto* chunk = static_cast<const LanguagesChunk*>(state.get());
    for (const LanguagesCandidate& cand : chunk->candidates) {
      if (!distinct_.insert(cand.hash)) continue;
      if (cand.lang < 0) continue;
      ++global_[static_cast<std::size_t>(cand.lang)];
      if (cand.domain >= 0) {
        ++result_.by_domain[static_cast<std::size_t>(cand.domain)]
                           [static_cast<std::size_t>(cand.lang)];
      }
    }
  }
}

void LanguagesAnalyzer::observe(const WeekObservation& obs) {
  const SnapshotTable& table = obs.snap->table;
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table.is_dir(i)) continue;
    if (!distinct_.insert(table.path_hash(i))) continue;
    const int lang = language_for_extension(path_extension(table.path(i)));
    if (lang < 0) continue;
    ++global_[static_cast<std::size_t>(lang)];
    const int domain = resolver_.domain_of_gid(table.gid(i));
    if (domain >= 0) {
      ++result_.by_domain[static_cast<std::size_t>(domain)]
                         [static_cast<std::size_t>(lang)];
    }
  }
}

void LanguagesAnalyzer::apply_delta(const WeekObservation&,
                                    const WeekDelta& delta) {
  const SnapshotTable& table = *delta.cur;
  for (const std::uint32_t row : delta.added_rows) {
    if (table.is_dir(row)) continue;
    if (!distinct_.insert(table.path_hash(row))) continue;
    const int lang = language_for_extension(path_extension(table.path(row)));
    if (lang < 0) continue;
    ++global_[static_cast<std::size_t>(lang)];
    const int domain = resolver_.domain_of_gid(table.gid(row));
    if (domain >= 0) {
      ++result_.by_domain[static_cast<std::size_t>(domain)]
                         [static_cast<std::size_t>(lang)];
    }
  }
}

bool LanguagesAnalyzer::save_state(StateWriter& w) const {
  distinct_.save_state(w);
  w.vec(global_);
  w.vec2(result_.by_domain);
  return true;
}

bool LanguagesAnalyzer::load_state(StateReader& r) {
  U64Set distinct;
  std::vector<std::uint64_t> global;
  std::vector<std::vector<std::uint64_t>> by_domain;
  if (!distinct.load_state(r) || !r.vec(&global) || !r.vec2(&by_domain) ||
      !r.ok()) {
    return false;
  }
  // Fixed shape: one counter per known language, one row per domain.
  if (global.size() != global_.size() ||
      by_domain.size() != result_.by_domain.size()) {
    return false;
  }
  for (const auto& row : by_domain) {
    if (row.size() != global_.size()) return false;
  }
  distinct_ = std::move(distinct);
  global_ = std::move(global);
  result_.by_domain = std::move(by_domain);
  return true;
}

void LanguagesAnalyzer::finish() {
  const auto langs = languages();
  std::vector<std::size_t> order;
  for (std::size_t l = 0; l < langs.size(); ++l) {
    if (global_[l] > 0) order.push_back(l);
  }
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return global_[a] > global_[b];
  });
  result_.ranking.clear();
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t l = order[rank];
    result_.ranking.push_back(LanguageRank{
        langs[l].name, global_[l], static_cast<int>(rank) + 1,
        langs[l].ieee_rank});
  }
}

std::string LanguagesAnalyzer::render() const {
  std::ostringstream os;
  os << "Fig 11: programming-language popularity (by file-extension count; "
        "IEEE Spectrum rank in parentheses)\n";
  AsciiTable t({"rank", "language", "files", "IEEE rank"});
  for (const LanguageRank& r : result_.ranking) {
    t.add_row({std::to_string(r.our_rank), r.name,
               format_with_commas(r.files),
               "(" + std::to_string(r.ieee_rank) + ")"});
  }
  t.print(os);

  os << "\nFig 12: per-domain top languages (measured vs Table 1)\n";
  AsciiTable d({"domain", "top", "second", "paper"});
  const auto profiles = domain_profiles();
  const auto langs = languages();
  for (std::size_t dom = 0; dom < profiles.size(); ++dom) {
    const int top = result_.top_language(dom);
    if (top < 0) continue;
    const int second = result_.second_language(dom);
    d.add_row({profiles[dom].id, langs[static_cast<std::size_t>(top)].name,
               second < 0 ? "-" : langs[static_cast<std::size_t>(second)].name,
               std::string(profiles[dom].lang1) + ", " + profiles[dom].lang2});
  }
  d.print(os);
  return os.str();
}

}  // namespace spider
