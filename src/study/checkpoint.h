// Durable checkpoint/restore for the study runner (DESIGN.md §14).
//
// A .sckpt file captures everything the incremental engine needs to resume
// a crashed study run mid-series: the runner position (last analyzed slot,
// its collection time and salvage flag, a content fingerprint of its
// table), the series-gap timeline discovered so far, and one opaque
// save_state blob per analyzer. The framing borrows the .scol v2
// discipline — a fixed magic with an embedded version, then checksummed
// sections — so damage detection is mechanical: any torn, bit-flipped, or
// truncated checkpoint fails its checksums and the runner re-baselines
// with a full scan instead of resuming from bad state.
//
// A checkpoint is advisory, never authoritative: the resume path
// re-decodes the checkpointed week from the source and only trusts the
// blobs when the re-decoded table's fingerprint (and week, time, salvage
// flag, projection, grain, hash function) all match what was saved.
// Anything else — including an analyzer that recorded a re-baseline
// marker instead of state — degrades to the ordinary full run, which is
// always correct. Files are written with util/io's write_file_atomic, so
// a crash mid-checkpoint leaves the previous checkpoint intact.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "snapshot/series.h"
#include "snapshot/table.h"
#include "util/status.h"

namespace spider {

/// Magic + version tag. The first 5 bytes identify the family; the last 3
/// are the format version, so a mismatch there is version skew rather
/// than corruption.
inline constexpr std::string_view kCheckpointMagic = "SCKPT001";

/// One analyzer's checkpointed state. `has_state` false is a re-baseline
/// marker: the analyzer (a scan-only one) cannot reconstruct its
/// accumulated results from a blob, so any checkpoint containing a marker
/// is not resumable and forces the full run.
struct AnalyzerCheckpoint {
  std::string id;              // StudyAnalyzer::state_id()
  std::uint32_t version = 0;   // StudyAnalyzer::state_version()
  bool has_state = false;
  std::vector<std::uint8_t> blob;
};

struct StudyCheckpoint {
  std::uint64_t week = 0;        // last analyzed slot index
  std::int64_t taken_at = 0;     // collection time of that snapshot
  bool degraded = false;         // its salvage flag (drives re-baselining)
  std::uint64_t table_fingerprint = 0;  // content hash of its projection
  std::uint64_t columns_mask = 0;       // the union projection of the run
  std::uint64_t grain = 0;              // scan grain (chunk boundaries)
  std::uint64_t hash_probe = 0;         // hash-function drift guard
  std::vector<SeriesGap> gaps;   // timeline damage known when written
  std::vector<AnalyzerCheckpoint> analyzers;  // roster order
};

/// Fingerprint of a fixed probe string under the project hash. Stored in
/// every checkpoint and compared on load: analyzer blobs are full of
/// hash-keyed layouts (flat maps, dictionaries, path-hash sets), so a
/// checkpoint written under a different hash function — a changed seed or
/// algorithm in util/hash.h — must re-baseline rather than resume onto
/// incompatible probe sequences.
std::uint64_t checkpoint_hash_probe();

/// Order-sensitive content hash of the table's decoded columns, limited
/// to the projection in `columns` (both sides of a resume computed it
/// under the same mask, which the checkpoint records).
std::uint64_t table_fingerprint(const SnapshotTable& table,
                                ColumnMask columns);

Status encode_checkpoint(const StudyCheckpoint& ckpt,
                         std::vector<std::uint8_t>* out);
Status decode_checkpoint(std::span<const std::uint8_t> bytes,
                         StudyCheckpoint* out);

/// Whole-file wrappers: atomic write (temp + fsync + rename + dir fsync),
/// and read + decode with the file as Status context.
Status save_checkpoint(const std::string& path, const StudyCheckpoint& ckpt);
Status load_checkpoint(const std::string& path, StudyCheckpoint* out);

/// Per-section damage report for `snapshot_tool checkpoint`: mirrors the
/// .scol `verify` subcommand's OK/CORRUPT lines, plus VERSION-SKEW for a
/// checkpoint from a different format revision.
struct CheckpointSection {
  enum class State : std::uint8_t { kOk, kCorrupt, kVersionSkew };
  State state = State::kOk;
  std::string name;    // "magic", "runner", "gaps", "analyzer 'census'"
  std::string detail;  // human-readable summary or failure description
};

struct CheckpointInspection {
  std::vector<CheckpointSection> sections;
  bool ok = true;          // every section kOk
  bool version_skew = false;
};

CheckpointInspection inspect_checkpoint_bytes(
    std::span<const std::uint8_t> bytes);

/// Union of a checkpoint's restored gap timeline with the gaps the source
/// reported after the resumed traversal, deduplicated by week slot
/// (restored wins — for pre-resume weeks the source never re-read the
/// damaged file, so the restored entry is the authoritative one). Result
/// ascending by week. This is how a resumed study renders the same
/// data-quality section as the uninterrupted run.
std::vector<SeriesGap> merge_gap_timelines(std::span<const SeriesGap> restored,
                                           std::span<const SeriesGap> live);

}  // namespace spider
