#include "study/file_age.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/stats.h"
#include "util/table.h"
#include "util/timeutil.h"

namespace spider {

namespace {

std::int64_t age_seconds(const SnapshotTable& table, std::size_t row) {
  return std::max<std::int64_t>(0, table.atime(row) - table.mtime(row));
}

/// Exact-integer mean: both scan and delta paths feed the same formula, so
/// the average never depends on accumulation order.
double mean_age_days(std::int64_t sum_seconds, std::size_t count) {
  if (count == 0) return 0.0;
  return static_cast<double>(sum_seconds) /
         (static_cast<double>(count) * static_cast<double>(kSecondsPerDay));
}

/// percentile_sorted(days, 50) over the converted multiset, without
/// materializing the double vector: seconds -> days is strictly monotonic
/// (and injective for any realistic age), so converting the two
/// interpolation endpoints reproduces the double-path result exactly.
double median_age_days(std::span<const std::int64_t> sorted) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return seconds_to_days(sorted[0]);
  const double pos = 0.5 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  const double a = seconds_to_days(sorted[lo]);
  const double b = seconds_to_days(sorted[hi]);
  return a + frac * (b - a);
}

struct FileAgeChunk : ScanChunkState {
  std::int64_t sum = 0;
  std::vector<std::int64_t> ages;  // row order
};

}  // namespace

std::unique_ptr<ScanChunkState> FileAgeAnalyzer::make_chunk_state() const {
  return std::make_unique<FileAgeChunk>();
}

void FileAgeAnalyzer::observe_chunk(ScanChunkState* state,
                                    const WeekObservation&,
                                    const ScanMorsel& m) {
  auto* chunk = static_cast<FileAgeChunk*>(state);
  const SnapshotTable& table = *m.table;
  for (std::size_t i = m.begin; i < m.end; ++i) {
    const std::size_t r = m.local(i);
    if (table.is_dir(r)) continue;
    const std::int64_t age = age_seconds(table, r);
    chunk->sum += age;
    chunk->ages.push_back(age);
  }
}

void FileAgeAnalyzer::merge(const WeekObservation& obs, ScanStateList states) {
  std::int64_t sum = 0;
  std::vector<std::int64_t> ages;
  ages.reserve(obs.file_count);
  for (const auto& state : states) {
    const auto* chunk = static_cast<const FileAgeChunk*>(state.get());
    sum += chunk->sum;
    ages.insert(ages.end(), chunk->ages.begin(), chunk->ages.end());
  }
  std::sort(ages.begin(), ages.end());
  FileAgePoint point;
  point.date = obs.snap->taken_at;
  point.avg_age_days = mean_age_days(sum, ages.size());
  point.median_age_days = median_age_days(ages);
  result_.points.push_back(point);
  if (obs.incremental) {
    live_sum_ = sum;
    live_ages_ = std::move(ages);
  }
}

void FileAgeAnalyzer::observe(const WeekObservation& obs) {
  const SnapshotTable& table = obs.snap->table;
  std::int64_t sum = 0;
  std::vector<std::int64_t> ages;
  ages.reserve(table.file_count());
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table.is_dir(i)) continue;
    const std::int64_t age = age_seconds(table, i);
    sum += age;
    ages.push_back(age);
  }
  std::sort(ages.begin(), ages.end());
  FileAgePoint point;
  point.date = obs.snap->taken_at;
  point.avg_age_days = mean_age_days(sum, ages.size());
  point.median_age_days = median_age_days(ages);
  result_.points.push_back(point);
  if (obs.incremental) {
    live_sum_ = sum;
    live_ages_ = std::move(ages);
  }
}

void FileAgeAnalyzer::apply_delta(const WeekObservation& obs,
                                  const WeekDelta& delta) {
  const SnapshotTable& cur = *delta.cur;
  const SnapshotTable& prev = *delta.prev;
  const DiffResult& diff = *delta.diff;

  // Ages leaving the population: deleted files, plus the stale prev-side
  // ages of files whose atime or mtime moved this week.
  std::vector<std::int64_t> removed;
  removed.reserve(diff.deleted_rows.size() + diff.readonly_prev_rows.size() +
                  diff.updated_prev_rows.size());
  for (const std::uint32_t row : diff.deleted_rows) {
    removed.push_back(age_seconds(prev, row));
  }
  for (const std::uint32_t row : diff.readonly_prev_rows) {
    removed.push_back(age_seconds(prev, row));
  }
  for (const std::uint32_t row : diff.updated_prev_rows) {
    removed.push_back(age_seconds(prev, row));
  }
  std::sort(removed.begin(), removed.end());

  std::vector<std::int64_t> added;
  added.reserve(diff.new_rows.size() + diff.readonly_rows.size() +
                diff.updated_rows.size());
  for (const std::uint32_t row : diff.new_rows) {
    added.push_back(age_seconds(cur, row));
  }
  for (const std::uint32_t row : diff.readonly_rows) {
    added.push_back(age_seconds(cur, row));
  }
  for (const std::uint32_t row : diff.updated_rows) {
    added.push_back(age_seconds(cur, row));
  }
  std::sort(added.begin(), added.end());

  for (const std::int64_t age : removed) live_sum_ -= age;
  for (const std::int64_t age : added) live_sum_ += age;

  // Multiset difference then merge; every removed age is present by
  // construction (it was in the previous snapshot's population).
  std::vector<std::int64_t> kept;
  kept.reserve(live_ages_.size() - removed.size());
  std::size_t r = 0;
  for (const std::int64_t age : live_ages_) {
    if (r < removed.size() && removed[r] == age) {
      ++r;
      continue;
    }
    kept.push_back(age);
  }
  std::vector<std::int64_t> next(kept.size() + added.size());
  std::merge(kept.begin(), kept.end(), added.begin(), added.end(),
             next.begin());

  FileAgePoint point;
  point.date = obs.snap->taken_at;
  point.avg_age_days = mean_age_days(live_sum_, next.size());
  point.median_age_days = median_age_days(next);
  result_.points.push_back(point);
  live_ages_ = std::move(next);
}

bool FileAgeAnalyzer::save_state(StateWriter& w) const {
  w.i64(live_sum_);
  w.vec(live_ages_);
  w.vec(result_.points);
  return true;
}

bool FileAgeAnalyzer::load_state(StateReader& r) {
  const std::int64_t live_sum = r.i64();
  std::vector<std::int64_t> live_ages;
  std::vector<FileAgePoint> points;
  if (!r.vec(&live_ages) || !r.vec(&points) || !r.ok()) return false;
  live_sum_ = live_sum;
  live_ages_ = std::move(live_ages);
  result_.points = std::move(points);
  return true;
}

void FileAgeAnalyzer::finish() {
  if (result_.points.empty()) return;
  std::vector<double> averages;
  std::size_t above = 0;
  for (const FileAgePoint& p : result_.points) {
    averages.push_back(p.avg_age_days);
    if (p.avg_age_days > result_.purge_days) ++above;
  }
  result_.median_of_averages = percentile(averages, 50.0);
  result_.max_of_averages = *std::max_element(averages.begin(), averages.end());
  result_.fraction_above_purge =
      static_cast<double>(above) / static_cast<double>(result_.points.size());
}

std::string FileAgeAnalyzer::render() const {
  std::ostringstream os;
  os << "Fig 16: average file age (atime - mtime) per snapshot, purge window "
     << result_.purge_days << " days\n";
  AsciiTable t({"snapshot", "avg age (days)", "median age (days)"});
  const std::size_t step =
      std::max<std::size_t>(1, result_.points.size() / 14);
  for (std::size_t i = 0; i < result_.points.size(); i += step) {
    const FileAgePoint& p = result_.points[i];
    t.add_row({date_iso(p.date), format_double(p.avg_age_days, 1),
               format_double(p.median_age_days, 1)});
  }
  t.print(os);
  os << "median of snapshot averages: "
     << format_double(result_.median_of_averages, 0)
     << " days (paper: 138); max: "
     << format_double(result_.max_of_averages, 0)
     << " (paper: 214); above the purge window in "
     << format_percent(result_.fraction_above_purge)
     << " of snapshots (paper: 86%)\n";
  return os.str();
}

}  // namespace spider
