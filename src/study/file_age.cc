#include "study/file_age.h"

#include <algorithm>
#include <sstream>

#include "util/stats.h"
#include "util/table.h"
#include "util/timeutil.h"

namespace spider {

namespace {
struct FileAgeChunk : ScanChunkState {
  StreamingStats stats;
  std::vector<double> ages;
};
}  // namespace

std::unique_ptr<ScanChunkState> FileAgeAnalyzer::make_chunk_state() const {
  return std::make_unique<FileAgeChunk>();
}

void FileAgeAnalyzer::observe_chunk(ScanChunkState* state,
                                    const WeekObservation& obs,
                                    std::size_t begin, std::size_t end) {
  auto* chunk = static_cast<FileAgeChunk*>(state);
  const SnapshotTable& table = obs.snap->table;
  for (std::size_t i = begin; i < end; ++i) {
    if (table.is_dir(i)) continue;
    const double age = seconds_to_days(
        std::max<std::int64_t>(0, table.atime(i) - table.mtime(i)));
    chunk->stats.add(age);
    chunk->ages.push_back(age);
  }
}

void FileAgeAnalyzer::merge(const WeekObservation& obs, ScanStateList states) {
  StreamingStats stats;
  std::vector<double> ages;
  ages.reserve(obs.snap->table.file_count());
  for (const auto& state : states) {
    const auto* chunk = static_cast<const FileAgeChunk*>(state.get());
    stats.merge(chunk->stats);
    ages.insert(ages.end(), chunk->ages.begin(), chunk->ages.end());
  }
  FileAgePoint point;
  point.date = obs.snap->taken_at;
  point.avg_age_days = stats.mean();
  point.median_age_days = percentile(ages, 50.0);
  result_.points.push_back(point);
}

void FileAgeAnalyzer::observe(const WeekObservation& obs) {
  const SnapshotTable& table = obs.snap->table;
  StreamingStats stats;
  std::vector<double> ages;
  ages.reserve(table.file_count());
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table.is_dir(i)) continue;
    const double age = seconds_to_days(
        std::max<std::int64_t>(0, table.atime(i) - table.mtime(i)));
    stats.add(age);
    ages.push_back(age);
  }
  FileAgePoint point;
  point.date = obs.snap->taken_at;
  point.avg_age_days = stats.mean();
  point.median_age_days = percentile(ages, 50.0);
  result_.points.push_back(point);
}

void FileAgeAnalyzer::finish() {
  if (result_.points.empty()) return;
  std::vector<double> averages;
  std::size_t above = 0;
  for (const FileAgePoint& p : result_.points) {
    averages.push_back(p.avg_age_days);
    if (p.avg_age_days > result_.purge_days) ++above;
  }
  result_.median_of_averages = percentile(averages, 50.0);
  result_.max_of_averages = *std::max_element(averages.begin(), averages.end());
  result_.fraction_above_purge =
      static_cast<double>(above) / static_cast<double>(result_.points.size());
}

std::string FileAgeAnalyzer::render() const {
  std::ostringstream os;
  os << "Fig 16: average file age (atime - mtime) per snapshot, purge window "
     << result_.purge_days << " days\n";
  AsciiTable t({"snapshot", "avg age (days)", "median age (days)"});
  const std::size_t step =
      std::max<std::size_t>(1, result_.points.size() / 14);
  for (std::size_t i = 0; i < result_.points.size(); i += step) {
    const FileAgePoint& p = result_.points[i];
    t.add_row({date_iso(p.date), format_double(p.avg_age_days, 1),
               format_double(p.median_age_days, 1)});
  }
  t.print(os);
  os << "median of snapshot averages: "
     << format_double(result_.median_of_averages, 0)
     << " days (paper: 138); max: "
     << format_double(result_.max_of_averages, 0)
     << " (paper: 214); above the purge window in "
     << format_percent(result_.fraction_above_purge)
     << " of snapshots (paper: 86%)\n";
  return os.str();
}

}  // namespace spider
