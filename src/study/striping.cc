#include "study/striping.h"

#include <sstream>

#include "util/table.h"

namespace spider {

StripingAnalyzer::StripingAnalyzer(const Resolver& resolver)
    : resolver_(resolver) {
  result_.by_domain.assign(domain_count(), StreamingStats{});
}

namespace {
struct StripingChunk : ScanChunkState {
  StreamingStats overall;
  std::vector<StreamingStats> by_domain;
  std::uint32_t max_stripe = 0;
};
}  // namespace

std::unique_ptr<ScanChunkState> StripingAnalyzer::make_chunk_state() const {
  auto chunk = std::make_unique<StripingChunk>();
  chunk->by_domain.assign(domain_count(), StreamingStats{});
  return chunk;
}

void StripingAnalyzer::observe_chunk(ScanChunkState* state,
                                     const WeekObservation&,
                                     const ScanMorsel& m) {
  auto* chunk = static_cast<StripingChunk*>(state);
  const SnapshotTable& table = *m.table;
  for (std::size_t i = m.begin; i < m.end; ++i) {
    const std::size_t r = m.local(i);
    if (table.is_dir(r)) continue;
    const std::uint32_t stripes = table.stripe_count(r);
    chunk->overall.add(stripes);
    chunk->max_stripe = std::max(chunk->max_stripe, stripes);
    const int domain = resolver_.domain_of_gid(table.gid(r));
    if (domain >= 0) {
      chunk->by_domain[static_cast<std::size_t>(domain)].add(stripes);
    }
  }
}

void StripingAnalyzer::merge(const WeekObservation&, ScanStateList states) {
  // Chunk-order folds keep the floating-point accumulation identical at
  // every thread count (StreamingStats::merge is order-sensitive).
  for (const auto& state : states) {
    const auto* chunk = static_cast<const StripingChunk*>(state.get());
    result_.overall.merge(chunk->overall);
    result_.max_stripe = std::max(result_.max_stripe, chunk->max_stripe);
    for (std::size_t d = 0; d < chunk->by_domain.size(); ++d) {
      result_.by_domain[d].merge(chunk->by_domain[d]);
    }
  }
}

void StripingAnalyzer::observe(const WeekObservation& obs) {
  const SnapshotTable& table = obs.snap->table;
  for (std::size_t i = 0; i < table.size(); ++i) {
    if (table.is_dir(i)) continue;
    const std::uint32_t stripes = table.stripe_count(i);
    result_.overall.add(stripes);
    result_.max_stripe = std::max(result_.max_stripe, stripes);
    const int domain = resolver_.domain_of_gid(table.gid(i));
    if (domain >= 0) {
      result_.by_domain[static_cast<std::size_t>(domain)].add(stripes);
    }
  }
}

void StripingAnalyzer::finish() {
  result_.domains_tuning = 0;
  result_.active_domains = 0;
  for (const StreamingStats& stats : result_.by_domain) {
    if (stats.count() == 0) continue;
    ++result_.active_domains;
    if (stats.min() != 4.0 || stats.max() != 4.0) ++result_.domains_tuning;
  }
}

std::string StripingAnalyzer::render() const {
  std::ostringstream os;
  os << "Fig 14: OST stripe counts per domain (default = 4)\n";
  AsciiTable t({"domain", "min", "avg", "max", "paper #OST"});
  const auto profiles = domain_profiles();
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    const StreamingStats& stats = result_.by_domain[d];
    if (stats.count() == 0) continue;
    t.add_row({profiles[d].id, format_double(stats.min(), 0),
               format_double(stats.mean(), 2), format_double(stats.max(), 0),
               std::to_string(profiles[d].ost_max)});
  }
  t.print(os);
  os << result_.domains_tuning << " of " << result_.active_domains
     << " domains tune stripe counts (paper: 20 of 35); max stripe "
     << result_.max_stripe << " (paper: 1,008)\n";
  return os.str();
}

}  // namespace spider
