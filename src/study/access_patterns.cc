#include "study/access_patterns.h"

#include <sstream>
#include <utility>

#include "util/table.h"
#include "util/timeutil.h"

namespace spider {

void AccessPatternsAnalyzer::observe(const WeekObservation& obs) {
  if (obs.gap_before) ++result_.gap_pairs_skipped;
  if (obs.diff == nullptr) return;
  AccessPatternWeek week;
  week.date = obs.snap->taken_at;
  week.new_frac = obs.diff->new_fraction();
  week.deleted_frac = obs.diff->deleted_fraction();
  week.readonly_frac = obs.diff->readonly_fraction();
  week.updated_frac = obs.diff->updated_fraction();
  week.untouched_frac = obs.diff->untouched_fraction();
  result_.weeks.push_back(week);
}

bool AccessPatternsAnalyzer::save_state(StateWriter& w) const {
  w.vec(result_.weeks);
  w.u64(result_.gap_pairs_skipped);
  return true;
}

bool AccessPatternsAnalyzer::load_state(StateReader& r) {
  std::vector<AccessPatternWeek> weeks;
  if (!r.vec(&weeks)) return false;
  const std::uint64_t gap_pairs_skipped = r.u64();
  if (!r.ok()) return false;
  result_.weeks = std::move(weeks);
  result_.gap_pairs_skipped = static_cast<std::size_t>(gap_pairs_skipped);
  return true;
}

void AccessPatternsAnalyzer::finish() {
  if (result_.weeks.empty()) return;
  const double n = static_cast<double>(result_.weeks.size());
  for (const AccessPatternWeek& w : result_.weeks) {
    result_.avg_new += w.new_frac / n;
    result_.avg_deleted += w.deleted_frac / n;
    result_.avg_readonly += w.readonly_frac / n;
    result_.avg_updated += w.updated_frac / n;
    result_.avg_untouched += w.untouched_frac / n;
  }
}

std::string AccessPatternsAnalyzer::render() const {
  std::ostringstream os;
  os << "Fig 13: weekly access-pattern breakdown (fractions of the previous "
        "week's files; 'new' of the current week's)\n";
  AsciiTable t({"snapshot", "new", "deleted", "readonly", "updated",
                "untouched"});
  const std::size_t step =
      std::max<std::size_t>(1, result_.weeks.size() / 12);
  for (std::size_t w = 0; w < result_.weeks.size(); w += step) {
    const AccessPatternWeek& week = result_.weeks[w];
    t.add_row({date_iso(week.date), format_percent(week.new_frac),
               format_percent(week.deleted_frac),
               format_percent(week.readonly_frac),
               format_percent(week.updated_frac),
               format_percent(week.untouched_frac)});
  }
  t.print(os);
  os << "averages: new " << format_percent(result_.avg_new) << " (paper 22%)"
     << ", deleted " << format_percent(result_.avg_deleted) << " (13%)"
     << ", readonly " << format_percent(result_.avg_readonly) << " (3%)"
     << ", updated " << format_percent(result_.avg_updated) << " (10%)"
     << ", untouched " << format_percent(result_.avg_untouched) << " (76%)\n";
  if (result_.gap_pairs_skipped > 0) {
    os << "note: " << result_.gap_pairs_skipped
       << " week pair(s) skipped at series gaps (missing/corrupt weeks)\n";
  }
  return os.str();
}

}  // namespace spider
