#include "study/collaboration.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/table.h"

namespace spider {

void CollaborationAnalyzer::finish() {
  const auto& plan = resolver_.plan();
  const int stf = domain_index("stf");

  // Member lists with Staff projects blanked out.
  std::vector<std::vector<std::uint32_t>> members =
      participation_.result().project_members;
  std::vector<std::uint32_t> project_domain(plan.projects.size(), 0);
  for (std::size_t p = 0; p < plan.projects.size(); ++p) {
    project_domain[p] = static_cast<std::uint32_t>(plan.projects[p].domain);
    if (plan.projects[p].domain == stf) members[p].clear();
  }

  result_.stats = collaboration_stats(
      static_cast<std::uint32_t>(plan.users.size()), members, project_domain,
      domain_count());

  // Describe the extreme pair's shared projects by domain.
  const std::uint32_t a = result_.stats.max_pair_user_a;
  const std::uint32_t b = result_.stats.max_pair_user_b;
  std::map<int, int> shared_domains;
  for (std::size_t p = 0; p < members.size(); ++p) {
    const auto& m = members[p];
    if (std::find(m.begin(), m.end(), a) != m.end() &&
        std::find(m.begin(), m.end(), b) != m.end()) {
      ++shared_domains[plan.projects[p].domain];
    }
  }
  std::ostringstream desc;
  bool first = true;
  for (const auto& [domain, count] : shared_domains) {
    if (!first) desc << " + ";
    desc << count << "x " << domain_profiles()[static_cast<std::size_t>(domain)].id;
    first = false;
  }
  result_.max_pair_description = desc.str();
}

std::string CollaborationAnalyzer::render() const {
  std::ostringstream os;
  const CollaborationStats& stats = result_.stats;
  os << "Fig 20: collaboration across users (Staff excluded)\n"
     << "  user pairs total: " << format_with_commas(stats.total_user_pairs)
     << " (paper: ~0.93M)\n"
     << "  collaborating pairs: "
     << format_with_commas(stats.collaborating_pairs) << " ("
     << format_percent(stats.collaborating_fraction())
     << " of all pairs; paper: ~1%)\n"
     << "  extreme pair shares " << stats.max_shared_projects
     << " projects: " << result_.max_pair_description
     << " (paper: 6 = 5x cli + 1x csc)\n";

  AsciiTable t({"domain", "share of collaborating pairs", "paper Collab %"});
  const auto profiles = domain_profiles();
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    const double share = stats.domain_share(d);
    if (share == 0) continue;
    t.add_row({profiles[d].id, format_percent(share),
               format_double(profiles[d].collab_pct, 2) + "%"});
  }
  t.print(os);
  return os.str();
}

}  // namespace spider
