#include "study/participation.h"

#include <algorithm>
#include <sstream>
#include <utility>

#include "util/table.h"

namespace spider {

ParticipationAnalyzer::ParticipationAnalyzer(const Resolver& resolver)
    : resolver_(resolver) {}

namespace {
/// Candidate (user, project) keys in row order. The scan only *filters*:
/// pairs_ is frozen during the scan, so contains() is a safe concurrent
/// read that drops keys seen in earlier weeks; a chunk-local set drops
/// repeats within the chunk. Cross-chunk first-seen resolution — the
/// order-dependent part — happens in merge().
struct ParticipationChunk : ScanChunkState {
  std::vector<std::uint64_t> candidates;
  U64Set local;
};
}  // namespace

std::unique_ptr<ScanChunkState> ParticipationAnalyzer::make_chunk_state()
    const {
  return std::make_unique<ParticipationChunk>();
}

void ParticipationAnalyzer::observe_chunk(ScanChunkState* state,
                                          const WeekObservation&,
                                          const ScanMorsel& m) {
  auto* chunk = static_cast<ParticipationChunk*>(state);
  const SnapshotTable& table = *m.table;
  for (std::size_t i = m.begin; i < m.end; ++i) {
    const std::size_t r = m.local(i);
    const int user = resolver_.user_of_uid(table.uid(r));
    const int project = resolver_.project_of_gid(table.gid(r));
    if (user < 0 || project < 0) continue;
    const std::uint64_t key = (static_cast<std::uint64_t>(user) << 32) |
                              static_cast<std::uint32_t>(project);
    if (pairs_.contains(key)) continue;
    if (chunk->local.insert(key)) chunk->candidates.push_back(key);
  }
}

void ParticipationAnalyzer::merge(const WeekObservation&,
                                  ScanStateList states) {
  for (const auto& state : states) {
    const auto* chunk = static_cast<const ParticipationChunk*>(state.get());
    for (const std::uint64_t key : chunk->candidates) {
      if (!pairs_.insert(key)) continue;
      result_.observed.push_back(
          MembershipEdge{static_cast<std::uint32_t>(key >> 32),
                         static_cast<std::uint32_t>(key & 0xffffffffu)});
    }
  }
}

void ParticipationAnalyzer::observe(const WeekObservation& obs) {
  const SnapshotTable& table = obs.snap->table;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const int user = resolver_.user_of_uid(table.uid(i));
    const int project = resolver_.project_of_gid(table.gid(i));
    if (user < 0 || project < 0) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(user) << 32) |
        static_cast<std::uint32_t>(project);
    if (pairs_.insert(key)) {
      result_.observed.push_back(
          MembershipEdge{static_cast<std::uint32_t>(user),
                         static_cast<std::uint32_t>(project)});
    }
  }
}

void ParticipationAnalyzer::apply_delta(const WeekObservation&,
                                        const WeekDelta& delta) {
  const SnapshotTable& table = *delta.cur;
  for (const std::uint32_t row : delta.touched_rows) {
    const int user = resolver_.user_of_uid(table.uid(row));
    const int project = resolver_.project_of_gid(table.gid(row));
    if (user < 0 || project < 0) continue;
    const std::uint64_t key = (static_cast<std::uint64_t>(user) << 32) |
                              static_cast<std::uint32_t>(project);
    if (pairs_.insert(key)) {
      result_.observed.push_back(
          MembershipEdge{static_cast<std::uint32_t>(user),
                         static_cast<std::uint32_t>(project)});
    }
  }
}

bool ParticipationAnalyzer::save_state(StateWriter& w) const {
  pairs_.save_state(w);
  w.vec(result_.observed);
  return true;
}

bool ParticipationAnalyzer::load_state(StateReader& r) {
  U64Set pairs;
  std::vector<MembershipEdge> observed;
  if (!pairs.load_state(r) || !r.vec(&observed)) return false;
  pairs_ = std::move(pairs);
  result_.observed = std::move(observed);
  return true;
}

void ParticipationAnalyzer::finish() {
  const auto& plan = resolver_.plan();
  std::vector<std::uint32_t> per_user(plan.users.size(), 0);
  result_.project_members.assign(plan.projects.size(), {});
  for (const MembershipEdge& edge : result_.observed) {
    ++per_user[edge.user];
    result_.project_members[edge.project].push_back(edge.user);
  }

  std::vector<double> user_counts, project_counts;
  std::size_t multi = 0, gt2 = 0, ge8 = 0;
  for (const std::uint32_t count : per_user) {
    if (count == 0) continue;
    user_counts.push_back(count);
    if (count > 1) ++multi;
    if (count > 2) ++gt2;
    if (count >= 8) ++ge8;
  }
  result_.active_users = user_counts.size();
  if (result_.active_users > 0) {
    const double n = static_cast<double>(result_.active_users);
    result_.frac_multi_project_users = static_cast<double>(multi) / n;
    result_.frac_gt2_project_users = static_cast<double>(gt2) / n;
    result_.frac_ge8_project_users = static_cast<double>(ge8) / n;
  }

  std::vector<std::vector<double>> by_domain(domain_count());
  double member_total = 0;
  for (std::size_t p = 0; p < result_.project_members.size(); ++p) {
    const std::size_t size = result_.project_members[p].size();
    if (size == 0) continue;
    project_counts.push_back(static_cast<double>(size));
    member_total += static_cast<double>(size);
    by_domain[static_cast<std::size_t>(plan.projects[p].domain)].push_back(
        static_cast<double>(size));
  }
  result_.active_projects = project_counts.size();
  if (result_.active_projects > 0) {
    result_.mean_users_per_project =
        member_total / static_cast<double>(result_.active_projects);
  }
  result_.median_users_by_domain.assign(domain_count(), 0.0);
  for (std::size_t d = 0; d < by_domain.size(); ++d) {
    if (!by_domain[d].empty()) {
      result_.median_users_by_domain[d] = percentile(by_domain[d], 50.0);
    }
  }
  result_.projects_per_user = EmpiricalCdf(std::move(user_counts));
  result_.users_per_project = EmpiricalCdf(std::move(project_counts));
}

std::string ParticipationAnalyzer::render() const {
  std::ostringstream os;
  os << "Fig 6: participation (" << result_.active_users << " users, "
     << result_.active_projects << " projects, "
     << result_.observed.size() << " memberships)\n"
     << "  users in >1 project:  "
     << format_percent(result_.frac_multi_project_users)
     << "   (paper: >60%)\n"
     << "  users in >2 projects: "
     << format_percent(result_.frac_gt2_project_users)
     << "   (paper: ~20%)\n"
     << "  users in >=8 projects: "
     << format_percent(result_.frac_ge8_project_users)
     << "  (paper: ~2%)\n"
     << "  mean users per project: "
     << format_double(result_.mean_users_per_project, 2) << "\n"
     << "  projects with <3 users: "
     << format_percent(result_.users_per_project.fraction_at_most(2.0))
     << " (paper: ~40%)\n"
     << "  projects with >10 users: "
     << format_percent(1.0 -
                       result_.users_per_project.fraction_at_most(10.0))
     << " (paper: ~20%)\n";

  os << "\nFig 6(c): median users per project by domain (>=10 highlighted)\n";
  AsciiTable t({"domain", "median users/project"});
  const auto profiles = domain_profiles();
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    const double median = result_.median_users_by_domain[d];
    if (median <= 0) continue;
    std::string cell = format_double(median, 1);
    if (median >= 10) cell += "  **";
    t.add_row({profiles[d].id, cell});
  }
  t.print(os);
  return os.str();
}

}  // namespace spider
