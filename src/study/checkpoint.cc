#include "study/checkpoint.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/hash.h"
#include "util/io.h"
#include "util/serialize.h"

namespace spider {

namespace {

// Section kinds. The runner section must come first (decode depends on it
// for the analyzer count); analyzer sections follow in roster order.
constexpr std::uint32_t kSectionRunner = 1;
constexpr std::uint32_t kSectionGaps = 2;
constexpr std::uint32_t kSectionAnalyzer = 3;

constexpr std::size_t kSectionHeaderBytes = 4 + 8 + 8;  // kind, size, sum

void append_section(std::uint32_t kind,
                    const std::vector<std::uint8_t>& payload,
                    std::vector<std::uint8_t>* out) {
  StateWriter w(out);
  w.u32(kind);
  w.u64(payload.size());
  w.u64(hash_bytes(std::string_view(
      reinterpret_cast<const char*>(payload.data()), payload.size())));
  out->insert(out->end(), payload.begin(), payload.end());
}

void encode_runner(const StudyCheckpoint& ckpt,
                   std::vector<std::uint8_t>* out) {
  StateWriter w(out);
  w.u64(ckpt.week);
  w.i64(ckpt.taken_at);
  w.u8(ckpt.degraded ? 1 : 0);
  w.u64(ckpt.table_fingerprint);
  w.u64(ckpt.columns_mask);
  w.u64(ckpt.grain);
  w.u64(ckpt.hash_probe);
  w.u32(static_cast<std::uint32_t>(ckpt.analyzers.size()));
}

bool decode_runner(StateReader& r, StudyCheckpoint* out,
                   std::uint32_t* analyzer_count) {
  out->week = r.u64();
  out->taken_at = r.i64();
  out->degraded = r.u8() != 0;
  out->table_fingerprint = r.u64();
  out->columns_mask = r.u64();
  out->grain = r.u64();
  out->hash_probe = r.u64();
  *analyzer_count = r.u32();
  return r.exhausted();
}

// A gap's Status may chain causes (decode failure over an IO failure);
// SeriesGap::describe() renders the whole chain, so the whole chain must
// round-trip for a resumed study's data-quality section to match the
// uninterrupted run byte for byte. with_context() folds into the message,
// so (code, message) per link reproduces the rendering exactly.
constexpr std::uint32_t kMaxStatusChain = 32;

void encode_status(StateWriter& w, const Status& status) {
  std::uint32_t links = 0;
  for (Status s = status; !s.ok() && links < kMaxStatusChain;
       s = s.cause()) {
    ++links;
    if (!s.has_cause()) break;
  }
  w.u32(links);
  Status s = status;
  for (std::uint32_t i = 0; i < links; ++i) {
    w.u8(static_cast<std::uint8_t>(s.code()));
    w.str(s.message());
    s = s.cause();
  }
}

bool decode_status(StateReader& r, Status* out) {
  const std::uint32_t links = r.u32();
  if (!r.ok() || links > kMaxStatusChain) return false;
  std::vector<std::pair<StatusCode, std::string>> chain;
  chain.reserve(links);
  for (std::uint32_t i = 0; i < links; ++i) {
    const std::uint8_t code = r.u8();
    std::string message;
    if (!r.str(&message)) return false;
    if (code == 0 || code > static_cast<std::uint8_t>(StatusCode::kInternal)) {
      return false;  // ok links never appear inside a failure chain
    }
    chain.emplace_back(static_cast<StatusCode>(code), std::move(message));
  }
  Status s;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    Status link(it->first, std::move(it->second));
    s = s.ok() ? std::move(link) : link.caused_by(s);
  }
  *out = std::move(s);
  return r.ok();
}

void encode_gaps(std::span<const SeriesGap> gaps,
                 std::vector<std::uint8_t>* out) {
  StateWriter w(out);
  w.u32(static_cast<std::uint32_t>(gaps.size()));
  for (const SeriesGap& gap : gaps) {
    w.u64(gap.week);
    w.i64(gap.taken_at);
    w.str(gap.file);
    encode_status(w, gap.status);
  }
}

bool decode_gaps(StateReader& r, std::vector<SeriesGap>* out) {
  const std::uint32_t count = r.u32();
  if (!r.ok()) return false;
  out->clear();
  out->reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    SeriesGap gap;
    gap.week = static_cast<std::size_t>(r.u64());
    gap.taken_at = r.i64();
    if (!r.str(&gap.file)) return false;
    if (!decode_status(r, &gap.status)) return false;
    out->push_back(std::move(gap));
  }
  return r.exhausted();
}

void encode_analyzer(const AnalyzerCheckpoint& a,
                     std::vector<std::uint8_t>* out) {
  StateWriter w(out);
  w.str(a.id);
  w.u32(a.version);
  w.u8(a.has_state ? 1 : 0);
  w.bytes(a.blob);
}

bool decode_analyzer(StateReader& r, AnalyzerCheckpoint* out) {
  if (!r.str(&out->id)) return false;
  out->version = r.u32();
  out->has_state = r.u8() != 0;
  if (!r.bytes(&out->blob)) return false;
  return r.exhausted();
}

struct SectionHeader {
  std::uint32_t kind = 0;
  std::uint64_t size = 0;
  std::uint64_t checksum = 0;
};

/// Reads one section header + payload starting at `pos`; fails on short
/// framing or a checksum mismatch. Advances `pos` past the section.
Status next_section(std::span<const std::uint8_t> bytes, std::size_t* pos,
                    SectionHeader* header,
                    std::span<const std::uint8_t>* payload) {
  if (bytes.size() - *pos < kSectionHeaderBytes) {
    return Status::truncated("section header cut short at byte " +
                             std::to_string(*pos));
  }
  StateReader r(bytes.subspan(*pos, kSectionHeaderBytes));
  header->kind = r.u32();
  header->size = r.u64();
  header->checksum = r.u64();
  *pos += kSectionHeaderBytes;
  if (header->size > bytes.size() - *pos) {
    return Status::truncated("section payload cut short: need " +
                             std::to_string(header->size) + " bytes, have " +
                             std::to_string(bytes.size() - *pos));
  }
  *payload = bytes.subspan(*pos, static_cast<std::size_t>(header->size));
  *pos += static_cast<std::size_t>(header->size);
  const std::uint64_t sum = hash_bytes(std::string_view(
      reinterpret_cast<const char*>(payload->data()), payload->size()));
  if (sum != header->checksum) {
    return Status::corruption("section checksum mismatch (kind " +
                              std::to_string(header->kind) + ")");
  }
  return Status();
}

/// Magic check, distinguishing version skew from plain damage.
Status check_magic(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kCheckpointMagic.size()) {
    return Status::truncated("shorter than the checkpoint magic");
  }
  const std::string_view head(reinterpret_cast<const char*>(bytes.data()),
                              kCheckpointMagic.size());
  if (head == kCheckpointMagic) return Status();
  if (head.substr(0, 5) == kCheckpointMagic.substr(0, 5)) {
    return Status::failed_precondition(
        "checkpoint format version skew: file is '" + std::string(head) +
        "', this build reads '" + std::string(kCheckpointMagic) + "'");
  }
  return Status::corruption("not a checkpoint file (bad magic)");
}

}  // namespace

std::uint64_t checkpoint_hash_probe() {
  // Any fixed string works; what matters is that the value moves whenever
  // util/hash.h's algorithm or seed does.
  return hash_bytes("spider-checkpoint-hash-probe");
}

std::uint64_t table_fingerprint(const SnapshotTable& table,
                                ColumnMask columns) {
  const auto fold_span = [](std::uint64_t h, const auto& span) {
    const std::string_view view =
        span.empty() ? std::string_view()
                     : std::string_view(
                           reinterpret_cast<const char*>(span.data()),
                           span.size_bytes());
    return hash_combine(h, hash_bytes(view));
  };
  std::uint64_t h = hash_combine(table.size(), table.file_count());
  if (columns & kColMaskPaths) {
    h = fold_span(h, table.path_hashes());
    h = fold_span(h, table.depths());
  }
  if (columns & kColMaskAtime) h = fold_span(h, table.atimes());
  if (columns & kColMaskCtime) h = fold_span(h, table.ctimes());
  if (columns & kColMaskMtime) h = fold_span(h, table.mtimes());
  if (columns & kColMaskUid) h = fold_span(h, table.uids());
  if (columns & kColMaskGid) h = fold_span(h, table.gids());
  if (columns & kColMaskMode) h = fold_span(h, table.modes());
  if (columns & kColMaskInode) h = fold_span(h, table.inodes());
  if (columns & kColMaskOsts) {
    for (std::size_t i = 0; i < table.size(); ++i) {
      h = fold_span(h, table.osts(i));
    }
  }
  return h;
}

Status encode_checkpoint(const StudyCheckpoint& ckpt,
                         std::vector<std::uint8_t>* out) {
  out->clear();
  out->insert(out->end(), kCheckpointMagic.begin(), kCheckpointMagic.end());
  std::vector<std::uint8_t> payload;
  encode_runner(ckpt, &payload);
  append_section(kSectionRunner, payload, out);
  payload.clear();
  encode_gaps(ckpt.gaps, &payload);
  append_section(kSectionGaps, payload, out);
  for (const AnalyzerCheckpoint& a : ckpt.analyzers) {
    payload.clear();
    encode_analyzer(a, &payload);
    append_section(kSectionAnalyzer, payload, out);
  }
  return Status();
}

Status decode_checkpoint(std::span<const std::uint8_t> bytes,
                         StudyCheckpoint* out) {
  Status s = check_magic(bytes);
  if (!s.ok()) return s;
  std::size_t pos = kCheckpointMagic.size();

  SectionHeader header;
  std::span<const std::uint8_t> payload;
  s = next_section(bytes, &pos, &header, &payload);
  if (!s.ok()) return s;
  if (header.kind != kSectionRunner) {
    return Status::corruption("first section is not the runner section");
  }
  *out = StudyCheckpoint{};
  std::uint32_t analyzer_count = 0;
  {
    StateReader r(payload);
    if (!decode_runner(r, out, &analyzer_count)) {
      return Status::corruption("runner section does not parse");
    }
  }

  s = next_section(bytes, &pos, &header, &payload);
  if (!s.ok()) return s;
  if (header.kind != kSectionGaps) {
    return Status::corruption("second section is not the gaps section");
  }
  {
    StateReader r(payload);
    if (!decode_gaps(r, &out->gaps)) {
      return Status::corruption("gaps section does not parse");
    }
  }

  out->analyzers.reserve(analyzer_count);
  for (std::uint32_t i = 0; i < analyzer_count; ++i) {
    s = next_section(bytes, &pos, &header, &payload);
    if (!s.ok()) return s;
    if (header.kind != kSectionAnalyzer) {
      return Status::corruption("expected analyzer section " +
                                std::to_string(i));
    }
    AnalyzerCheckpoint a;
    StateReader r(payload);
    if (!decode_analyzer(r, &a)) {
      return Status::corruption("analyzer section " + std::to_string(i) +
                                " does not parse");
    }
    out->analyzers.push_back(std::move(a));
  }
  if (pos != bytes.size()) {
    return Status::corruption(std::to_string(bytes.size() - pos) +
                              " trailing bytes after the last section");
  }
  return Status();
}

std::vector<SeriesGap> merge_gap_timelines(std::span<const SeriesGap> restored,
                                           std::span<const SeriesGap> live) {
  std::vector<SeriesGap> out(restored.begin(), restored.end());
  for (const SeriesGap& gap : live) {
    bool seen = false;
    for (const SeriesGap& have : restored) {
      if (have.week == gap.week) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(gap);
  }
  std::sort(out.begin(), out.end(),
            [](const SeriesGap& a, const SeriesGap& b) {
              return a.week < b.week;
            });
  return out;
}

Status save_checkpoint(const std::string& path, const StudyCheckpoint& ckpt) {
  std::vector<std::uint8_t> bytes;
  const Status s = encode_checkpoint(ckpt, &bytes);
  if (!s.ok()) return s;
  return write_file_atomic(path, bytes);
}

Status load_checkpoint(const std::string& path, StudyCheckpoint* out) {
  std::vector<std::uint8_t> bytes;
  Status s = read_file(path, &bytes);
  if (!s.ok()) return s;
  return decode_checkpoint(bytes, out).with_context(path);
}

CheckpointInspection inspect_checkpoint_bytes(
    std::span<const std::uint8_t> bytes) {
  CheckpointInspection report;
  const auto add = [&](CheckpointSection::State state, std::string name,
                       std::string detail) {
    report.ok = report.ok && state == CheckpointSection::State::kOk;
    report.version_skew = report.version_skew ||
                          state == CheckpointSection::State::kVersionSkew;
    report.sections.push_back(
        CheckpointSection{state, std::move(name), std::move(detail)});
  };

  const Status magic = check_magic(bytes);
  if (!magic.ok()) {
    add(magic.code() == StatusCode::kFailedPrecondition
            ? CheckpointSection::State::kVersionSkew
            : CheckpointSection::State::kCorrupt,
        "magic", magic.message());
    return report;
  }
  add(CheckpointSection::State::kOk, "magic", std::string(kCheckpointMagic));

  std::size_t pos = kCheckpointMagic.size();
  std::size_t index = 0;
  while (pos < bytes.size()) {
    SectionHeader header;
    std::span<const std::uint8_t> payload;
    const Status s = next_section(bytes, &pos, &header, &payload);
    const std::string fallback_name = "section " + std::to_string(index);
    if (!s.ok()) {
      add(CheckpointSection::State::kCorrupt, fallback_name, s.message());
      return report;  // framing is gone; nothing past here is readable
    }
    StateReader r(payload);
    switch (header.kind) {
      case kSectionRunner: {
        StudyCheckpoint ckpt;
        std::uint32_t analyzer_count = 0;
        if (decode_runner(r, &ckpt, &analyzer_count)) {
          add(CheckpointSection::State::kOk, "runner",
              "week " + std::to_string(ckpt.week) + ", " +
                  std::to_string(analyzer_count) + " analyzers, grain " +
                  std::to_string(ckpt.grain) +
                  (ckpt.degraded ? ", degraded snapshot" : ""));
        } else {
          add(CheckpointSection::State::kCorrupt, "runner",
              "does not parse");
        }
        break;
      }
      case kSectionGaps: {
        std::vector<SeriesGap> gaps;
        if (decode_gaps(r, &gaps)) {
          add(CheckpointSection::State::kOk, "gaps",
              std::to_string(gaps.size()) + " recorded gap" +
                  (gaps.size() == 1 ? "" : "s"));
        } else {
          add(CheckpointSection::State::kCorrupt, "gaps", "does not parse");
        }
        break;
      }
      case kSectionAnalyzer: {
        AnalyzerCheckpoint a;
        if (decode_analyzer(r, &a)) {
          // Scan-only analyzers have no state_id; label them as such
          // instead of printing an empty quoted name.
          add(CheckpointSection::State::kOk,
              a.id.empty() ? "analyzer (scan-only)"
                           : "analyzer '" + a.id + "'",
              a.has_state ? "v" + std::to_string(a.version) + ", " +
                                std::to_string(a.blob.size()) +
                                "-byte state"
                          : "re-baseline marker");
        } else {
          add(CheckpointSection::State::kCorrupt, fallback_name,
              "analyzer section does not parse");
        }
        break;
      }
      default:
        add(CheckpointSection::State::kCorrupt, fallback_name,
            "unknown section kind " + std::to_string(header.kind));
        break;
    }
    ++index;
  }
  return report;
}

}  // namespace spider
