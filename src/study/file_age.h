// Fig 16: file age — atime minus mtime, i.e. how long after its last write
// a file is still being read. The paper uses the per-snapshot average to
// argue the 90-day purge window is too tight (median 138 days, max 214,
// above 90 in 86% of snapshots). Also supports the purge-window ablation.
#pragma once

#include <string>
#include <vector>

#include "study/runner.h"

namespace spider {

struct FileAgePoint {
  std::int64_t date = 0;
  double avg_age_days = 0;
  double median_age_days = 0;
};

struct FileAgeResult {
  std::vector<FileAgePoint> points;
  double median_of_averages = 0;  // the paper's headline 138
  double max_of_averages = 0;     // 214
  double fraction_above_purge = 0;  // of snapshots; 86% in the paper
  int purge_days = 90;
};

class FileAgeAnalyzer : public StudyAnalyzer {
 public:
  explicit FileAgeAnalyzer(int purge_days = 90) { result_.purge_days = purge_days; }

  ColumnMask columns_needed() const override {
    return kColMaskAtime | kColMaskMtime | kColMaskMode;
  }
  std::unique_ptr<ScanChunkState> make_chunk_state() const override;
  void observe_chunk(ScanChunkState* state, const WeekObservation& obs,
                     const ScanMorsel& m) override;
  void merge(const WeekObservation& obs, ScanStateList states) override;

  /// Serial reference path (bench baseline; see DESIGN.md §10).
  void observe(const WeekObservation& obs) override;
  /// Delta port: age (atime - mtime) is frozen for untouched rows, so the
  /// week's age population is last week's sorted multiset minus the ages
  /// of deleted/readonly/updated prev rows plus the ages of new/readonly/
  /// updated cur rows. All paths compute the mean from an exact int64
  /// second sum and the median from the sorted multiset, so the delta and
  /// scan paths agree bit-for-bit.
  bool supports_delta() const override { return true; }
  void apply_delta(const WeekObservation& obs,
                   const WeekDelta& delta) override;
  void finish() override;

  std::string_view state_id() const override { return "file-age"; }
  bool save_state(StateWriter& w) const override;
  bool load_state(StateReader& r) override;

  const FileAgeResult& result() const { return result_; }
  std::string render() const;

 private:
  /// Retained live-population state for the delta path (maintained only
  /// when the study runs incrementally): exact age-second sum and the
  /// sorted age multiset of the previous snapshot's files.
  std::int64_t live_sum_ = 0;
  std::vector<std::int64_t> live_ages_;
  FileAgeResult result_;
};

}  // namespace spider
