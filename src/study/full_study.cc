#include "study/full_study.h"

#include <sstream>

#include "study/checkpoint.h"
#include "synth/langmap.h"
#include "util/table.h"

namespace spider {

FullStudy::FullStudy(const Resolver& resolver, std::size_t burst_min_files)
    : user_profile(resolver),
      participation(resolver),
      census(resolver),
      extensions(resolver),
      languages(resolver),
      striping(resolver),
      burstiness(resolver, burst_min_files),
      network(resolver, participation),
      collaboration(resolver, participation),
      resolver_(resolver) {}

void FullStudy::run(SnapshotSource& source, const StudyOptions& options) {
  // Order matters for finish(): network and collaboration read the
  // participation result, so participation precedes them.
  StudyAnalyzer* analyzers[] = {
      &user_profile, &participation, &census,    &extensions,
      &languages,    &access_patterns, &striping, &growth,
      &file_age,     &burstiness,    &network,   &collaboration,
  };
  // Surface the checkpoint layer's outcome even when the caller did not
  // ask for a report: a resumed run must merge the restored gap timeline
  // below (the source never re-read the pre-resume weeks).
  CheckpointReport local_report;
  StudyOptions run_options = options;
  if (run_options.checkpoint_report == nullptr) {
    run_options.checkpoint_report = &local_report;
  }
  run_study(source, analyzers, run_options);
  // Snapshot the source's damage accounting (DirectorySeries discovers
  // decode failures during the traversal itself), unioned with any gaps
  // restored from a resumed checkpoint.
  const auto gaps = source.gaps();
  if (run_options.checkpoint_report->restored_gaps.empty()) {
    gaps_.assign(gaps.begin(), gaps.end());
  } else {
    gaps_ = merge_gap_timelines(run_options.checkpoint_report->restored_gaps,
                                gaps);
  }
}

std::string FullStudy::render_data_quality() const {
  std::ostringstream os;
  const std::size_t visited = growth.result().points.size();
  const std::size_t slots = visited + gaps_.size();
  if (gaps_.empty()) {
    os << "Data quality: complete series, " << visited
       << " weeks, no gaps\n";
    return os.str();
  }
  os << "Data quality: " << visited << " of " << slots
     << " week slots usable; " << gaps_.size() << " gap(s)\n";
  for (const SeriesGap& gap : gaps_) {
    os << "  " << gap.describe() << "\n";
  }
  os << "  diff pairs skipped at gaps: "
     << access_patterns.result().gap_pairs_skipped
     << " (access patterns), " << burstiness.result().gap_pairs_skipped
     << " (burstiness); " << growth.result().gap_weeks
     << " growth point(s) span a gap\n";
  return os.str();
}

std::string FullStudy::render_table1() const {
  std::ostringstream os;
  os << "Table 1: per-domain summary (measured from the synthetic series)\n";
  AsciiTable t({"domain", "#entries(K)", "depth[med,max]", "top ext (%)",
                "langs", "#OST", "write cv", "read cv", "network %",
                "collab %"});
  const auto profiles = domain_profiles();
  const auto langs = ::spider::languages();
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    const std::uint64_t entries = census.result().files_by_domain[d] +
                                  census.result().dirs_by_domain[d];
    if (entries == 0) continue;
    const FiveNumber& depth = census.result().depth_by_domain[d];
    const auto& top = extensions.result().top3_by_domain[d];
    const int lang1 = languages.result().top_language(d);
    const int lang2 = languages.result().second_language(d);
    const FiveNumber& wcv = burstiness.result().write_cv_by_domain[d];
    const FiveNumber& rcv = burstiness.result().read_cv_by_domain[d];

    std::string lang_cell;
    if (lang1 >= 0) lang_cell = langs[static_cast<std::size_t>(lang1)].name;
    if (lang2 >= 0) {
      lang_cell += ", ";
      lang_cell += langs[static_cast<std::size_t>(lang2)].name;
    }
    t.add_row({profiles[d].id,
               format_double(static_cast<double>(entries) / 1000.0, 1),
               "[" + format_double(depth.median, 0) + ", " +
                   format_double(depth.max, 0) + "]",
               top.empty() ? "-" : top[0].first + " (" +
                                       format_double(top[0].second, 1) + ")",
               lang_cell.empty() ? "-" : lang_cell,
               format_double(striping.result().by_domain[d].max(), 0),
               wcv.count ? format_cv(wcv.median) : "-",
               rcv.count ? format_cv(rcv.median) : "-",
               format_percent(
                   network.result().giant_probability_by_domain[d]),
               format_percent(collaboration.result().stats.domain_share(d))});
  }
  t.print(os);
  return os.str();
}

}  // namespace spider
