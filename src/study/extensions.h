// Table 2 + Fig 10: file-type popularity.
//   Table 2 — per-domain top-3 extensions with their share of the domain's
//             unique files;
//   Fig 10 — the weekly share of the 20 globally most popular extensions
//            (plus "no extension" and "other"), which exposes the .bb and
//            .xyz campaign spikes.
#pragma once

#include <string>
#include <vector>

#include "engine/agg.h"
#include "engine/dict.h"
#include "engine/u64set.h"
#include "study/resolve.h"
#include "study/runner.h"

namespace spider {

struct ExtensionsResult {
  /// Per-domain (extension, percent-of-domain-unique-files), top 3.
  std::vector<std::vector<std::pair<std::string, double>>> top3_by_domain;

  /// Global top-20 by unique-file count ("" never appears here;
  /// extensionless files are tracked separately).
  std::vector<std::pair<std::string, std::uint64_t>> global_top;
  std::uint64_t unique_files = 0;
  std::uint64_t unique_no_extension = 0;

  /// Fig 10 trend: one row per snapshot.
  std::vector<std::int64_t> snapshot_dates;
  /// share_top[s][k] = share of global_top[k] among snapshot s's files.
  std::vector<std::vector<double>> share_top;
  std::vector<double> share_none;   // "no extension" share per snapshot
  std::vector<double> share_other;  // everything else per snapshot
};

class ExtensionsAnalyzer : public StudyAnalyzer {
 public:
  explicit ExtensionsAnalyzer(const Resolver& resolver, std::size_t top_k = 20);

  ColumnMask columns_needed() const override {
    return kColMaskPaths | kColMaskGid | kColMaskMode;
  }
  std::unique_ptr<ScanChunkState> make_chunk_state() const override;
  void observe_chunk(ScanChunkState* state, const WeekObservation& obs,
                     const ScanMorsel& m) override;
  void merge(const WeekObservation& obs, ScanStateList states) override;

  /// Serial reference path (bench baseline; see DESIGN.md §10).
  void observe(const WeekObservation& obs) override;
  /// Delta port: matched rows keep their paths (hence extensions), so the
  /// week's counts are the previous week's counts minus deleted files plus
  /// new files, and first-seen/intern work touches only new rows. New
  /// dictionary ids can only come from new rows — any extension on a
  /// matched or deleted row already existed last week — so the intern
  /// order (ascending new rows) matches the scan path's chunk-fold order.
  bool supports_delta() const override { return true; }
  void apply_delta(const WeekObservation& obs,
                   const WeekDelta& delta) override;
  void finish() override;

  std::string_view state_id() const override { return "extensions"; }
  bool save_state(StateWriter& w) const override;
  bool load_state(StateReader& r) override;

  const ExtensionsResult& result() const { return result_; }
  std::string render() const;

 private:
  const Resolver& resolver_;
  std::size_t top_k_;
  U64Set distinct_;
  /// Study-long extension dictionary (DESIGN.md §12): every distinct
  /// extension interned once, counts below are dense vectors indexed by
  /// id. All rendered output sorts by count with NAME tie-breaks, so the
  /// results never depend on intern order.
  StringDict dict_;
  std::vector<std::uint64_t> unique_global_;                  // [ext id]
  std::vector<std::vector<std::uint64_t>> unique_by_domain_;  // [domain][id]
  std::vector<std::vector<std::uint64_t>> weekly_counts_;     // [week][id]
  std::vector<std::uint64_t> weekly_files_;
  std::vector<std::uint64_t> weekly_none_;
  ExtensionsResult result_;
};

}  // namespace spider
