// §4.3: the file-generation network.
//   Fig 18(b) — degree distribution and its power-law fit;
//   Table 3   — connected-component size histogram, the giant component's
//               composition (users/projects), its exact diameter, and the
//               network center (radius, center entities);
//   Fig 19    — per-domain share of the giant component and per-domain
//               probability of belonging to it.
// Consumes the ParticipationAnalyzer's observed membership edges; place it
// after participation in the analyzer list (finish order matters).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "graph/bipartite.h"
#include "graph/components.h"
#include "graph/metrics.h"
#include "study/participation.h"

namespace spider {

struct NetworkResult {
  std::size_t users = 0, projects = 0, edges = 0;

  LinearFit power_law;  // log-log degree fit (slope < 0)

  std::map<std::uint32_t, std::uint32_t> component_histogram;
  std::size_t component_count = 0;
  std::size_t giant_vertices = 0;
  std::size_t giant_users = 0;
  std::size_t giant_projects = 0;
  std::uint32_t giant_diameter = 0;
  std::uint32_t giant_radius = 0;
  std::size_t giant_center_entities = 0;
  /// Composition of the network center (vertices attaining the radius):
  /// the paper found 2 stf + 2 csc + 1 env + 1 chp projects and six
  /// staff/postdoc users there — the facility's liaison structure.
  std::size_t center_users = 0;
  std::size_t center_projects = 0;
  /// Center projects per domain (index into domain_profiles()).
  std::vector<std::size_t> center_projects_by_domain;

  /// Fig 19(a): per-domain share of the giant component's projects.
  std::vector<double> giant_share_by_domain;
  /// Fig 19(b): per-domain P(active project is in the giant component).
  std::vector<double> giant_probability_by_domain;
};

class NetworkAnalyzer : public StudyAnalyzer {
 public:
  NetworkAnalyzer(const Resolver& resolver,
                  const ParticipationAnalyzer& participation)
      : resolver_(resolver), participation_(participation) {}

  /// Pure post-processing of participation's membership: reads no columns
  /// itself (participation requests what it needs).
  ColumnMask columns_needed() const override { return kColMaskNone; }
  void observe(const WeekObservation&) override {}  // pure post-processing
  void finish() override;

  const NetworkResult& result() const { return result_; }
  std::string render() const;

 private:
  const Resolver& resolver_;
  const ParticipationAnalyzer& participation_;
  NetworkResult result_;
};

}  // namespace spider
