#include "study/user_profile.h"

#include <sstream>
#include <utility>

#include "util/table.h"

namespace spider {

namespace {
const char* org_name(OrgType org) {
  switch (org) {
    case OrgType::kGovernment: return "government/natl-lab";
    case OrgType::kAcademia: return "academia";
    case OrgType::kIndustry: return "industry";
    case OrgType::kOther: return "other (intl. institutes)";
  }
  return "?";
}
}  // namespace

double UserProfileResult::org_fraction(OrgType org) const {
  if (active_users == 0) return 0.0;
  return static_cast<double>(by_org[static_cast<std::size_t>(org)]) /
         static_cast<double>(active_users);
}

namespace {
struct UserProfileChunk : ScanChunkState {
  std::vector<std::uint8_t> seen;  // by dense user index, lazily sized
  std::size_t unknown = 0;
};
}  // namespace

UserProfileAnalyzer::UserProfileAnalyzer(const Resolver& resolver)
    : resolver_(resolver), seen_(resolver.plan().users.size(), 0) {}

std::unique_ptr<ScanChunkState> UserProfileAnalyzer::make_chunk_state() const {
  return std::make_unique<UserProfileChunk>();
}

void UserProfileAnalyzer::observe_chunk(ScanChunkState* state,
                                        const WeekObservation&,
                                        const ScanMorsel& m) {
  auto* chunk = static_cast<UserProfileChunk*>(state);
  const SnapshotTable& table = *m.table;
  if (chunk->seen.empty()) chunk->seen.assign(seen_.size(), 0);
  for (std::size_t i = m.begin; i < m.end; ++i) {
    const int user = resolver_.user_of_uid(table.uid(m.local(i)));
    if (user >= 0) {
      chunk->seen[static_cast<std::size_t>(user)] = 1;
    } else {
      ++chunk->unknown;
    }
  }
}

void UserProfileAnalyzer::merge(const WeekObservation&, ScanStateList states) {
  std::size_t week_unknown = 0;
  for (const auto& state : states) {
    const auto* chunk = static_cast<const UserProfileChunk*>(state.get());
    week_unknown += chunk->unknown;
    if (chunk->seen.empty()) continue;
    for (std::size_t u = 0; u < seen_.size(); ++u) seen_[u] |= chunk->seen[u];
  }
  result_.unknown_uids += week_unknown;
  live_unknown_ = week_unknown;
}

void UserProfileAnalyzer::observe(const WeekObservation& obs) {
  const SnapshotTable& table = obs.snap->table;
  std::size_t week_unknown = 0;
  for (const std::uint32_t uid : table.uids()) {
    const int user = resolver_.user_of_uid(uid);
    if (user >= 0) {
      seen_[static_cast<std::size_t>(user)] = 1;
    } else {
      ++week_unknown;
    }
  }
  result_.unknown_uids += week_unknown;
  live_unknown_ = week_unknown;
}

void UserProfileAnalyzer::apply_delta(const WeekObservation&,
                                      const WeekDelta& delta) {
  const SnapshotTable& cur = *delta.cur;
  const SnapshotTable& prev = *delta.prev;
  const DiffResult& diff = *delta.diff;
  for (const std::uint32_t row : delta.touched_rows) {
    const int user = resolver_.user_of_uid(cur.uid(row));
    if (user >= 0) seen_[static_cast<std::size_t>(user)] = 1;
  }
  const auto unknown_in = [&](const SnapshotTable& table,
                              std::span<const std::uint32_t> rows) {
    std::size_t n = 0;
    for (const std::uint32_t row : rows) {
      n += resolver_.user_of_uid(table.uid(row)) < 0 ? 1 : 0;
    }
    return n;
  };
  // Readonly and untouched rows kept their uid (chown moves ctime), so the
  // week's unknown total moves only with created, deleted, and rewritten
  // rows.
  live_unknown_ -= unknown_in(prev, diff.deleted_rows);
  live_unknown_ -= unknown_in(prev, diff.deleted_dir_rows);
  live_unknown_ -= unknown_in(prev, diff.updated_prev_rows);
  live_unknown_ -= unknown_in(prev, diff.changed_dir_prev_rows);
  live_unknown_ += unknown_in(cur, diff.new_rows);
  live_unknown_ += unknown_in(cur, diff.new_dir_rows);
  live_unknown_ += unknown_in(cur, diff.updated_rows);
  live_unknown_ += unknown_in(cur, diff.changed_dir_rows);
  result_.unknown_uids += live_unknown_;
}

bool UserProfileAnalyzer::save_state(StateWriter& w) const {
  w.vec(seen_);
  w.u64(live_unknown_);
  w.u64(result_.unknown_uids);
  return true;
}

bool UserProfileAnalyzer::load_state(StateReader& r) {
  std::vector<std::uint8_t> seen;
  if (!r.vec(&seen)) return false;
  const std::uint64_t live_unknown = r.u64();
  const std::uint64_t unknown_uids = r.u64();
  // The seen bitmap is sized by the resolver's user plan; a size mismatch
  // means the checkpoint came from a differently-configured study.
  if (!r.ok() || seen.size() != seen_.size()) return false;
  seen_ = std::move(seen);
  live_unknown_ = static_cast<std::size_t>(live_unknown);
  result_.unknown_uids = static_cast<std::size_t>(unknown_uids);
  return true;
}

void UserProfileAnalyzer::finish() {
  result_.by_org.assign(kOrgTypeCount, 0);
  result_.by_domain.assign(domain_count(), 0);
  result_.active_users = 0;
  const auto& users = resolver_.plan().users;
  for (std::size_t u = 0; u < users.size(); ++u) {
    if (!seen_[u]) continue;
    ++result_.active_users;
    ++result_.by_org[static_cast<std::size_t>(users[u].org)];
    ++result_.by_domain[static_cast<std::size_t>(users[u].primary_domain)];
  }
}

std::string UserProfileAnalyzer::render() const {
  std::ostringstream os;
  os << "Fig 5(a): active users by organization type (" << result_.active_users
     << " active users)\n";
  AsciiTable orgs({"organization", "users", "share"});
  for (std::size_t o = 0; o < kOrgTypeCount; ++o) {
    orgs.add_row({org_name(static_cast<OrgType>(o)),
                  std::to_string(result_.by_org[o]),
                  format_percent(result_.org_fraction(static_cast<OrgType>(o)))});
  }
  orgs.print(os);

  os << "\nFig 5(b): active users by science domain\n";
  AsciiTable doms({"domain", "users", "share"});
  const auto profiles = domain_profiles();
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    if (result_.by_domain[d] == 0) continue;
    doms.add_row(
        {profiles[d].id, std::to_string(result_.by_domain[d]),
         format_percent(static_cast<double>(result_.by_domain[d]) /
                        static_cast<double>(result_.active_users))});
  }
  doms.print(os);
  return os.str();
}

}  // namespace spider
