// Fig 5: the profile of active users — "active" meaning the uid owns at
// least one file or directory in some snapshot — classified by organization
// type (5(a)) and by primary science domain (5(b)).
#pragma once

#include <string>
#include <vector>

#include "study/resolve.h"
#include "study/runner.h"

namespace spider {

struct UserProfileResult {
  std::size_t active_users = 0;
  std::size_t unknown_uids = 0;  // uids with no account-directory entry
  std::vector<std::size_t> by_org;     // indexed by OrgType
  std::vector<std::size_t> by_domain;  // indexed by domain
  double org_fraction(OrgType org) const;
};

class UserProfileAnalyzer : public StudyAnalyzer {
 public:
  explicit UserProfileAnalyzer(const Resolver& resolver);

  ColumnMask columns_needed() const override { return kColMaskUid; }
  std::unique_ptr<ScanChunkState> make_chunk_state() const override;
  void observe_chunk(ScanChunkState* state, const WeekObservation& obs,
                     const ScanMorsel& m) override;
  void merge(const WeekObservation& obs, ScanStateList states) override;

  /// Serial reference path (bench baseline; see DESIGN.md §10).
  void observe(const WeekObservation& obs) override;
  /// Delta port: a dense user seen for the first time must ride on a row
  /// whose uid differs from last week, and chown moves ctime — so only
  /// touched rows can flip seen_ bits. The per-week unknown-uid total is
  /// rolled forward from the retained previous-week total by removing
  /// deleted/rewritten prev rows and adding new/rewritten cur rows.
  bool supports_delta() const override { return true; }
  void apply_delta(const WeekObservation& obs,
                   const WeekDelta& delta) override;
  void finish() override;

  std::string_view state_id() const override { return "user-profile"; }
  bool save_state(StateWriter& w) const override;
  bool load_state(StateReader& r) override;

  const UserProfileResult& result() const { return result_; }
  std::string render() const;

 private:
  const Resolver& resolver_;
  std::vector<std::uint8_t> seen_;  // by dense user index
  /// Previous snapshot's unknown-uid row count (the week's contribution to
  /// result_.unknown_uids); the base the delta path rolls forward from.
  std::size_t live_unknown_ = 0;
  UserProfileResult result_;
};

}  // namespace spider
