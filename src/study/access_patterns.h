// Fig 13: weekly access-pattern breakdown from adjacent-snapshot diffs —
// new / deleted / readonly / updated / untouched — plus the study-wide
// averages the paper reports (3% readonly, 10% updated, 76% untouched,
// 13% deleted, 22% new).
#pragma once

#include <string>
#include <vector>

#include "study/runner.h"

namespace spider {

struct AccessPatternWeek {
  std::int64_t date = 0;
  double new_frac = 0, deleted_frac = 0, readonly_frac = 0, updated_frac = 0,
         untouched_frac = 0;
};

struct AccessPatternsResult {
  std::vector<AccessPatternWeek> weeks;
  double avg_new = 0, avg_deleted = 0, avg_readonly = 0, avg_updated = 0,
         avg_untouched = 0;
  /// Adjacent-week pairs excluded because a series gap (missing/corrupt
  /// week) sat between them; the averages cover the remaining pairs.
  std::size_t gap_pairs_skipped = 0;
};

class AccessPatternsAnalyzer : public StudyAnalyzer {
 public:
  bool wants_diff() const override { return true; }
  /// Week-level only: everything it reads comes from the shared diff (the
  /// runner adds the diff's columns), so no per-row scan work and no
  /// chunk state — the default merge() forwards to observe() once a week.
  /// Merge-time reads are safe under the fused diff kernel too: the
  /// kernel's merge runs first (registration order) and completes
  /// obs.diff before this analyzer's merge sees it.
  ColumnMask columns_needed() const override { return kColMaskNone; }
  void observe(const WeekObservation& obs) override;
  /// Consumes only the week's DiffResult — already O(1) in snapshot size —
  /// so the delta port is observe() itself; on delta weeks obs.diff is
  /// final by the time apply_delta runs.
  bool supports_delta() const override { return true; }
  void apply_delta(const WeekObservation& obs, const WeekDelta&) override {
    observe(obs);
  }
  void finish() override;

  std::string_view state_id() const override { return "access-patterns"; }
  bool save_state(StateWriter& w) const override;
  bool load_state(StateReader& r) override;

  const AccessPatternsResult& result() const { return result_; }
  std::string render() const;

 private:
  AccessPatternsResult result_;
};

}  // namespace spider
