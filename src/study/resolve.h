// Resolver: joins snapshot records (uid/gid) back to the account directory
// (users, projects, science domains) — the paper's join of the LustreDU
// snapshots against the OLCF user-accounting database.
#pragma once

#include "synth/plan.h"

namespace spider {

class Resolver {
 public:
  explicit Resolver(const FacilityPlan& plan) : plan_(plan) {}

  const FacilityPlan& plan() const { return plan_; }

  /// Dense user index for a uid, or -1.
  int user_of_uid(std::uint32_t uid) const { return plan_.user_index(uid); }

  /// Dense project index for a gid, or -1.
  int project_of_gid(std::uint32_t gid) const {
    const auto it = plan_.project_by_gid.find(gid);
    return it == plan_.project_by_gid.end() ? -1
                                            : static_cast<int>(it->second);
  }

  /// Science-domain index for a gid, or -1.
  int domain_of_gid(std::uint32_t gid) const {
    const int p = project_of_gid(gid);
    return p < 0 ? -1 : plan_.projects[static_cast<std::size_t>(p)].domain;
  }

 private:
  const FacilityPlan& plan_;
};

}  // namespace spider
