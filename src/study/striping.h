// Fig 14: OST stripe-count usage per science domain (min / average / max
// over every file row in every snapshot). Quantifies how many domains
// depart from the default stripe count of 4 — the paper's Observation 6.
#pragma once

#include <string>
#include <vector>

#include "study/resolve.h"
#include "study/runner.h"
#include "util/stats.h"

namespace spider {

struct StripingResult {
  std::vector<StreamingStats> by_domain;  // stripe counts of file rows
  StreamingStats overall;
  /// Domains whose files ever leave the default stripe count of 4.
  std::size_t domains_tuning = 0;
  std::size_t active_domains = 0;
  std::uint32_t max_stripe = 0;
};

class StripingAnalyzer : public StudyAnalyzer {
 public:
  explicit StripingAnalyzer(const Resolver& resolver);

  ColumnMask columns_needed() const override {
    return kColMaskOsts | kColMaskGid | kColMaskMode;
  }
  std::unique_ptr<ScanChunkState> make_chunk_state() const override;
  void observe_chunk(ScanChunkState* state, const WeekObservation& obs,
                     const ScanMorsel& m) override;
  void merge(const WeekObservation& obs, ScanStateList states) override;

  /// Serial reference path (bench baseline; see DESIGN.md §10).
  void observe(const WeekObservation& obs) override;
  void finish() override;

  const StripingResult& result() const { return result_; }
  std::string render() const;

 private:
  const Resolver& resolver_;
  StripingResult result_;
};

}  // namespace spider
