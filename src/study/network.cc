#include "study/network.h"

#include <sstream>

#include "util/table.h"

namespace spider {

void NetworkAnalyzer::finish() {
  const auto& plan = resolver_.plan();
  const auto& observed = participation_.result().observed;
  const std::uint32_t num_users =
      static_cast<std::uint32_t>(plan.users.size());
  const std::uint32_t num_projects =
      static_cast<std::uint32_t>(plan.projects.size());

  const BipartiteGraph network(num_users, num_projects, observed);
  const Graph& graph = network.graph();
  result_.edges = graph.edge_count();

  // Active entities only (degree > 0); isolated planned-but-unseen
  // vertices do not participate in the paper's statistics.
  std::vector<VertexId> active;
  for (std::size_t v = 0; v < graph.vertex_count(); ++v) {
    if (graph.degree(static_cast<VertexId>(v)) > 0) {
      active.push_back(static_cast<VertexId>(v));
      if (network.is_project_vertex(static_cast<VertexId>(v))) {
        ++result_.projects;
      } else {
        ++result_.users;
      }
    }
  }

  result_.power_law = degree_power_law_fit(graph);

  const ComponentInfo components = connected_components(graph);
  // Histogram over components that contain at least one edge (size >= 2);
  // isolated vertices are inactive entities.
  for (std::size_t c = 0; c < components.count; ++c) {
    if (components.size[c] >= 2) {
      ++result_.component_histogram[components.size[c]];
      ++result_.component_count;
    }
  }

  const std::vector<VertexId> giant = components.members(components.largest);
  result_.giant_vertices = giant.size();
  std::vector<std::uint32_t> giant_projects_by_domain(domain_count(), 0);
  std::vector<std::uint32_t> active_projects_by_domain(domain_count(), 0);
  for (const VertexId v : giant) {
    if (network.is_project_vertex(v)) {
      ++result_.giant_projects;
      const int d =
          plan.projects[network.project_of_vertex(v)].domain;
      ++giant_projects_by_domain[static_cast<std::size_t>(d)];
    } else {
      ++result_.giant_users;
    }
  }
  for (const VertexId v : active) {
    if (network.is_project_vertex(v)) {
      const int d = plan.projects[network.project_of_vertex(v)].domain;
      ++active_projects_by_domain[static_cast<std::size_t>(d)];
    }
  }

  const DiameterInfo diameter = component_diameter(graph, giant);
  result_.giant_diameter = diameter.diameter;
  result_.giant_radius = diameter.radius;
  result_.giant_center_entities = diameter.centers.size();
  result_.center_projects_by_domain.assign(domain_count(), 0);
  for (const VertexId v : diameter.centers) {
    if (network.is_project_vertex(v)) {
      ++result_.center_projects;
      const int d = plan.projects[network.project_of_vertex(v)].domain;
      ++result_.center_projects_by_domain[static_cast<std::size_t>(d)];
    } else {
      ++result_.center_users;
    }
  }

  result_.giant_share_by_domain.assign(domain_count(), 0.0);
  result_.giant_probability_by_domain.assign(domain_count(), 0.0);
  for (std::size_t d = 0; d < domain_count(); ++d) {
    if (result_.giant_projects > 0) {
      result_.giant_share_by_domain[d] =
          static_cast<double>(giant_projects_by_domain[d]) /
          static_cast<double>(result_.giant_projects);
    }
    if (active_projects_by_domain[d] > 0) {
      result_.giant_probability_by_domain[d] =
          static_cast<double>(giant_projects_by_domain[d]) /
          static_cast<double>(active_projects_by_domain[d]);
    }
  }
}

std::string NetworkAnalyzer::render() const {
  std::ostringstream os;
  os << "Fig 18: file-generation network — " << result_.users << " users, "
     << result_.projects << " projects, " << result_.edges << " edges\n"
     << "  degree power-law fit: slope "
     << format_double(result_.power_law.slope, 2) << ", R^2 "
     << format_double(result_.power_law.r2, 2)
     << " (paper: descending linear slope in log-log)\n";

  os << "\nTable 3: connected components (" << result_.component_count
     << " total; paper: 160)\n";
  AsciiTable hist({"size", "count"});
  for (const auto& [size, count] : result_.component_histogram) {
    hist.add_row({std::to_string(size), std::to_string(count)});
  }
  hist.print(os);
  os << "largest component: " << result_.giant_vertices << " vertices ("
     << result_.giant_users << " users + " << result_.giant_projects
     << " projects; paper: 1,259 = 1,051 + 208), diameter "
     << result_.giant_diameter << " (paper: 18), radius "
     << result_.giant_radius << " with " << result_.giant_center_entities
     << " center entities (paper: ~10-hop centers, 12 entities)\n";
  os << "network center: " << result_.center_users << " users + "
     << result_.center_projects << " projects [";
  bool first = true;
  const auto center_profiles = domain_profiles();
  for (std::size_t d = 0; d < center_profiles.size(); ++d) {
    if (result_.center_projects_by_domain[d] == 0) continue;
    if (!first) os << ", ";
    os << result_.center_projects_by_domain[d] << "x "
       << center_profiles[d].id;
    first = false;
  }
  os << "] (paper: 6 users + 6 projects [2x stf, 2x csc, 1x env, 1x chp])\n";

  os << "\nFig 19: giant-component membership by domain\n";
  AsciiTable fig19({"domain", "share of giant", "P(in giant)",
                    "paper Network %"});
  const auto profiles = domain_profiles();
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    if (result_.giant_share_by_domain[d] == 0 &&
        result_.giant_probability_by_domain[d] == 0) {
      continue;
    }
    fig19.add_row({profiles[d].id,
                   format_percent(result_.giant_share_by_domain[d]),
                   format_percent(result_.giant_probability_by_domain[d]),
                   format_double(profiles[d].network_pct, 1) + "%"});
  }
  fig19.print(os);
  return os.str();
}

}  // namespace spider
