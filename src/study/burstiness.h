// Fig 17: burstiness of file operations, measured as the coefficient of
// variation of timestamps within each snapshot interval.
//
// Metric (the paper leaves it implicit; see DESIGN.md §4): for every
// (project, interval) with at least 100 qualifying files, take the mtimes
// of the interval's *new* files (write side) or the atimes of its
// *readonly* files (read side), expressed in seconds since the interval
// start, and compute cv = stddev / mean. Lower cv = burstier. Per-domain
// distributions (five-number summaries over project-intervals) reproduce
// the paper's box plot.
#pragma once

#include <string>
#include <vector>

#include "study/resolve.h"
#include "study/runner.h"
#include "util/stats.h"

namespace spider {

struct BurstinessResult {
  std::vector<FiveNumber> write_cv_by_domain;
  std::vector<FiveNumber> read_cv_by_domain;
  /// Medians across all qualifying project-intervals.
  double overall_write_cv_median = 0;
  double overall_read_cv_median = 0;
  std::size_t qualifying_write_samples = 0;
  std::size_t qualifying_read_samples = 0;
  /// Intervals excluded because a series gap sat between the snapshots
  /// (gap-spanning windows would smear several activity cycles into one
  /// cv sample).
  std::size_t gap_pairs_skipped = 0;
};

class BurstinessAnalyzer : public StudyAnalyzer {
 public:
  /// `min_files`: the paper excludes projects accessing fewer than 100
  /// files in a week; scale-reduced runs pass a proportionally smaller
  /// threshold.
  explicit BurstinessAnalyzer(const Resolver& resolver,
                              std::size_t min_files = 100);

  bool wants_diff() const override { return true; }
  /// atime/mtime feed the cv samples; gid keys the project grouping. The
  /// diff's own columns arrive via the runner's diff mask.
  ColumnMask columns_needed() const override {
    return kColMaskAtime | kColMaskMtime | kColMaskGid;
  }
  std::unique_ptr<ScanChunkState> make_chunk_state() const override;
  void observe_chunk(ScanChunkState* state, const WeekObservation& obs,
                     const ScanMorsel& m) override;
  void merge(const WeekObservation& obs, ScanStateList states) override;

  /// Serial reference path (bench baseline; see DESIGN.md §10).
  void observe(const WeekObservation& obs) override;
  void finish() override;

  const BurstinessResult& result() const { return result_; }
  std::string render() const;

 private:
  void collect(const SnapshotTable& table,
               const std::vector<std::uint32_t>& rows, bool use_atime,
               std::int64_t window_start,
               std::vector<std::vector<double>>& out);

  const Resolver& resolver_;
  std::size_t min_files_;
  std::vector<std::vector<double>> write_samples_;  // per domain
  std::vector<std::vector<double>> read_samples_;
  BurstinessResult result_;
};

}  // namespace spider
