// FullStudy: every analyzer wired together for a single streaming pass —
// the whole paper in one run. render_table1() assembles the per-domain
// summary that is the paper's Table 1.
#pragma once

#include <string>

#include "study/access_patterns.h"
#include "study/burstiness.h"
#include "study/census.h"
#include "study/collaboration.h"
#include "study/extensions.h"
#include "study/file_age.h"
#include "study/growth.h"
#include "study/languages.h"
#include "study/network.h"
#include "study/participation.h"
#include "study/striping.h"
#include "study/user_profile.h"

namespace spider {

class FullStudy {
 public:
  /// `burst_min_files`: Fig 17's >=100-files-per-week filter; pass a
  /// proportionally smaller value for scale-reduced runs.
  explicit FullStudy(const Resolver& resolver,
                     std::size_t burst_min_files = 100);

  /// One pass over the series; all analyzers observe every snapshot.
  void run(SnapshotSource& source);

  /// The paper's Table 1, measured from the synthetic series.
  std::string render_table1() const;

  UserProfileAnalyzer user_profile;
  ParticipationAnalyzer participation;
  CensusAnalyzer census;
  ExtensionsAnalyzer extensions;
  LanguagesAnalyzer languages;
  AccessPatternsAnalyzer access_patterns;
  StripingAnalyzer striping;
  GrowthAnalyzer growth;
  FileAgeAnalyzer file_age;
  BurstinessAnalyzer burstiness;
  NetworkAnalyzer network;
  CollaborationAnalyzer collaboration;

 private:
  const Resolver& resolver_;
};

}  // namespace spider
