// FullStudy: every analyzer wired together for a single streaming pass —
// the whole paper in one run. render_table1() assembles the per-domain
// summary that is the paper's Table 1.
#pragma once

#include <string>

#include "study/access_patterns.h"
#include "study/burstiness.h"
#include "study/census.h"
#include "study/collaboration.h"
#include "study/extensions.h"
#include "study/file_age.h"
#include "study/growth.h"
#include "study/languages.h"
#include "study/network.h"
#include "study/participation.h"
#include "study/striping.h"
#include "study/user_profile.h"

namespace spider {

class FullStudy {
 public:
  /// `burst_min_files`: Fig 17's >=100-files-per-week filter; pass a
  /// proportionally smaller value for scale-reduced runs.
  explicit FullStudy(const Resolver& resolver,
                     std::size_t burst_min_files = 100);

  /// One pass over the series; all analyzers observe every snapshot.
  /// Gaps in the series (missing/corrupt weeks) do not abort the study:
  /// diff-based figures skip the gap-adjacent pairs, count-based figures
  /// annotate, and render_data_quality() reports the damage.
  /// `options` selects the thread pool, scan grain, and prefetch mode for
  /// the shared parallel scan (see DESIGN.md §10); the defaults reproduce
  /// the serial single-pass semantics bit-for-bit.
  void run(SnapshotSource& source, const StudyOptions& options = {});

  /// The paper's Table 1, measured from the synthetic series.
  std::string render_table1() const;

  /// The damage report for the last run(): usable weeks, every gap with
  /// its reason, and the analyzer-side skip counts. One line when the
  /// series was complete.
  std::string render_data_quality() const;

  /// Gaps observed by the last run() (copied from the source).
  std::span<const SeriesGap> gaps() const { return gaps_; }

  UserProfileAnalyzer user_profile;
  ParticipationAnalyzer participation;
  CensusAnalyzer census;
  ExtensionsAnalyzer extensions;
  LanguagesAnalyzer languages;
  AccessPatternsAnalyzer access_patterns;
  StripingAnalyzer striping;
  GrowthAnalyzer growth;
  FileAgeAnalyzer file_age;
  BurstinessAnalyzer burstiness;
  NetworkAnalyzer network;
  CollaborationAnalyzer collaboration;

 private:
  const Resolver& resolver_;
  std::vector<SeriesGap> gaps_;
};

}  // namespace spider
