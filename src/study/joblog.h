// Job-log fusion — the paper's future work ("we anticipate that combining
// multiple system logs (e.g., job logs) ... will allow more interesting
// insights"). The synthetic facility emits a scheduler job log alongside
// its snapshots; this analysis correlates the two observation channels:
// weekly write-job counts from the job log against weekly new-file counts
// measured independently from snapshot diffs.
#pragma once

#include <string>
#include <vector>

#include "study/resolve.h"
#include "synth/generator.h"
#include "util/stats.h"

namespace spider {

struct JobLogResult {
  std::size_t write_jobs = 0;
  std::size_t read_jobs = 0;
  std::uint64_t files_written = 0;
  std::uint64_t files_read = 0;

  /// Weekly channels, aligned by snapshot interval (diff weeks only).
  std::vector<std::uint64_t> jobs_per_interval;
  std::vector<std::uint64_t> new_files_per_interval;

  /// Pearson correlation between the two channels; the validation that
  /// metadata-only churn measurements track actual scheduler activity.
  double job_newfile_correlation = 0;

  /// Jobs per domain (write + read).
  std::vector<std::uint64_t> jobs_by_domain;

  /// Files written per write job (the paper: "an individual application
  /// run may produce a large number of files in a short period").
  FiveNumber files_per_write_job;
};

/// Runs the generator once with job-log capture and snapshot diffs.
JobLogResult analyze_job_log(FacilityGenerator& generator,
                             const Resolver& resolver);

std::string render_job_log(const JobLogResult& result);

}  // namespace spider
