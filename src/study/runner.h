// Study framework: analyzers consume the snapshot series in one streaming
// pass (week by week, in order), the runner retains only the previous
// week's snapshot and computes the adjacent-snapshot diff once for all
// diff-based analyzers — the same pipeline shape the paper ran on Spark,
// sized so the full study never needs more than two snapshots resident.
#pragma once

#include <memory>
#include <span>

#include "engine/diff.h"
#include "snapshot/series.h"

namespace spider {

struct WeekObservation {
  std::size_t week = 0;  // slot index in the series timeline (may skip)
  const Snapshot* snap = nullptr;
  const Snapshot* prev = nullptr;  // null on the first snapshot
  const DiffResult* diff = nullptr;  // null unless requested & prev exists
  /// True when one or more slots between `prev` and `snap` are gaps
  /// (missing or corrupt weeks). The runner does not compute a diff
  /// across a gap — it would span several collection intervals and
  /// contaminate the weekly rates — so `diff` is null then even for
  /// analyzers that want it; count-based analyzers use the flag to
  /// annotate the affected week.
  bool gap_before = false;
};

class StudyAnalyzer {
 public:
  virtual ~StudyAnalyzer() = default;

  /// Analyzers returning true receive the adjacent-snapshot DiffResult.
  virtual bool wants_diff() const { return false; }

  virtual void observe(const WeekObservation& obs) = 0;

  /// Called once after the last snapshot.
  virtual void finish() {}
};

/// Streams `source` through all analyzers. The diff (when any analyzer
/// wants it) is computed once per week and shared.
void run_study(SnapshotSource& source,
               std::span<StudyAnalyzer* const> analyzers);

/// Convenience for a single analyzer.
void run_study(SnapshotSource& source, StudyAnalyzer& analyzer);

}  // namespace spider
