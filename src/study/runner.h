// Study framework: analyzers consume the snapshot series in one streaming
// pass (week by week, in order). Since the morsel refactor (DESIGN.md §10)
// each week is ONE shared parallel scan feeding every analyzer at once:
// the runner computes the union column projection, pushes it into the
// source, computes the adjacent-snapshot diff once for all diff-based
// analyzers — by default as a kernel fused into the same scan, probing a
// radix-partitioned index built during the decode slot (DESIGN.md §11) —
// and drives all analyzers' chunk kernels over the table via engine/scan.
// Decode of week N+1 overlaps analysis of week N (a depth-1 double
// buffer), and the previous week is retained by move or stable pointer —
// never by deep copy.
//
// Determinism: chunk layout depends only on the row count and grain, and
// every analyzer's merge() folds chunk states in chunk order, so all
// results are bit-identical to the 1-thread reference at any thread count.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "engine/diff.h"
#include "engine/scan.h"
#include "snapshot/series.h"
#include "util/serialize.h"

namespace spider {

/// Read-only view of the fused diff kernel's per-chunk classification.
/// scan_table runs kernels in registration order within a chunk and the
/// diff kernel is registered first, so when any analyzer's observe_chunk
/// sees rows [begin, end), the DiffChunkRows for that same range is
/// already complete and safe to read from the same thread.
class DiffChunkProvider {
 public:
  /// The classification of the chunk whose row range starts at `begin`,
  /// or null when no diff is active this week.
  virtual const DiffChunkRows* chunk_rows(std::size_t begin) const = 0;

 protected:
  ~DiffChunkProvider() = default;
};

/// One week's change set, assembled by the runner on delta weeks
/// (StudyOptions::incremental) from a diff carrying the prev-row mapping
/// and the directory diff. Delta-capable analyzers consume this instead of
/// scanning the snapshot; DESIGN.md §13 spells out the contract.
struct WeekDelta {
  /// The week's full classification, with has_prev_rows and has_dir_diff.
  const DiffResult* diff = nullptr;
  const SnapshotTable* prev = nullptr;
  const SnapshotTable* cur = nullptr;
  /// New file rows ∪ new directory rows of cur, ascending — the only rows
  /// a first-seen tracker must consider: a matched row kept its path, so
  /// its identity was already seen in an earlier week.
  std::vector<std::uint32_t> added_rows;
  /// added_rows ∪ updated file rows ∪ changed directory rows, ascending —
  /// the rows whose non-path attributes may differ from last week.
  /// Readonly and untouched rows are excluded by POSIX semantics: chmod
  /// and chown move ctime, so a row classified readonly or untouched kept
  /// its uid, gid, and mode.
  std::vector<std::uint32_t> touched_rows;
};

struct WeekObservation {
  std::size_t week = 0;  // slot index in the series timeline (may skip)
  const Snapshot* snap = nullptr;
  const Snapshot* prev = nullptr;  // null on the first snapshot
  const DiffResult* diff = nullptr;  // null unless requested & prev exists
  /// Non-null only while the fused diff kernel is active
  /// (StudyOptions::fuse_diff): analyzers that consume diff rows inside
  /// observe_chunk must read their chunk's slice through this — in fused
  /// mode `diff` is only complete by merge() time. Merge-time readers can
  /// keep using `diff` unchanged.
  const DiffChunkProvider* diff_chunks = nullptr;
  /// True when one or more slots between `prev` and `snap` are gaps
  /// (missing or corrupt weeks). The runner does not compute a diff
  /// across a gap — it would span several collection intervals and
  /// contaminate the weekly rates — so `diff` is null then even for
  /// analyzers that want it; count-based analyzers use the flag to
  /// annotate the affected week.
  bool gap_before = false;
  /// The study's pool (null = process-global), for order-insensitive
  /// parallel sub-steps inside merge() — see ScanKernel::merge_chunks.
  ThreadPool* pool = nullptr;
  /// Mirror of StudyOptions::flat_agg for analyzers that keep both paths.
  bool flat_agg = true;
  /// Mirror of StudyOptions::incremental. On scan weeks (re-baselines
  /// included) delta-capable analyzers use it to decide whether to also
  /// (re)build the retained cross-week state their apply_delta needs —
  /// pure scan runs skip that upkeep.
  bool incremental = false;
  /// Row/file/dir counts of the week's snapshot. On resident weeks these
  /// mirror snap->table; on streamed weeks — where snap->table is an
  /// empty shell and the rows only ever exist one group at a time — the
  /// runner fills them from the streaming pre-pass, so merge-time sizing
  /// (reserves, hash-set capacity hints) never touches the whole table.
  std::size_t row_count = 0;
  std::size_t file_count = 0;
  std::size_t dir_count = 0;
};

/// A study analyzer is a scan kernel plus per-week bookkeeping. The runner
/// calls, per week:
///
///   state[c] = make_chunk_state()            (one per chunk, serial)
///   observe_chunk(state[c], obs, morsel)     (concurrent, shared scan)
///   merge(obs, states)                       (serial, chunk order)
///
/// observe_chunk runs concurrently with other chunks AND other analyzers:
/// it must write only through its chunk state. Reading analyzer members
/// is allowed when nothing mutates them during the scan — the standard
/// pattern is a first-seen filter that reads a membership set frozen since
/// the previous merge and defers inserts to merge().
///
/// merge() is the ordered, single-threaded step: chunk states arrive in
/// chunk (= row) order at every thread count, so order-dependent logic
/// (first-seen tracking, floating-point accumulation) is deterministic.
///
/// Analyzers that predate the chunk interface can instead override the
/// legacy serial hook observe(): the default merge() forwards to it once
/// per week.
class StudyAnalyzer {
 public:
  virtual ~StudyAnalyzer() = default;

  /// Analyzers returning true receive the adjacent-snapshot DiffResult.
  virtual bool wants_diff() const { return false; }

  /// Columns this analyzer reads. The runner ORs the masks of all
  /// analyzers (plus the diff's columns when any analyzer wants the diff)
  /// and pushes the union into the source, so unused columns are never
  /// decoded. Default: everything — safe for legacy analyzers.
  virtual ColumnMask columns_needed() const { return kColMaskAll; }

  /// Fresh per-chunk partial state; null (the default) for analyzers with
  /// no per-row work.
  virtual std::unique_ptr<ScanChunkState> make_chunk_state() const {
    return nullptr;
  }

  /// Accumulate the morsel's rows into `state`. The morsel's global row
  /// range [m.begin, m.end) numbers rows of the week's full snapshot;
  /// m.table holds them at local rows m.local(i). On resident weeks
  /// m.table is &obs.snap->table with base 0; on streamed weeks it is a
  /// transient staging table valid only for this call — analyzers must
  /// read rows through the morsel, never through obs.snap->table.
  virtual void observe_chunk(ScanChunkState* state, const WeekObservation& obs,
                             const ScanMorsel& m) {
    (void)state;
    (void)obs;
    (void)m;
  }

  /// Fold the week's chunk states (chunk order) and do per-week
  /// bookkeeping. Default: forwards to the legacy observe() hook.
  virtual void merge(const WeekObservation& obs, ScanStateList states) {
    (void)states;
    observe(obs);
  }

  /// Legacy serial hook, called by the default merge() once per week.
  virtual void observe(const WeekObservation& obs) { (void)obs; }

  /// Analyzers returning true maintain retained cross-week state and can
  /// consume a WeekDelta through apply_delta() instead of scanning the
  /// snapshot. The runner decides per week: on delta weeks the analyzer is
  /// left out of the shared scan entirely; on re-baseline weeks (the first
  /// snapshot, a week after a gap, a salvage-damaged week or its
  /// successor) it runs its normal scan kernel and must rebuild the
  /// retained state from scratch (obs.incremental signals that upkeep is
  /// needed). Results must be byte-identical either way.
  virtual bool supports_delta() const { return false; }

  /// Apply one week's delta against the retained state. Runs serially, in
  /// registration order, after the week's shared scan completed — obs.diff
  /// is final. Called only when supports_delta() is true.
  virtual void apply_delta(const WeekObservation& obs,
                           const WeekDelta& delta) {
    (void)obs;
    (void)delta;
  }

  /// Called once after the last snapshot.
  virtual void finish() {}

  /// --- Checkpoint contract (DESIGN.md §14) ---
  ///
  /// Analyzers that can serialize their accumulated state implement all
  /// four hooks; the runner then includes them in .sckpt checkpoints and
  /// can resume a crashed study without replaying the analyzed weeks.
  /// The defaults record a re-baseline marker instead: a checkpoint
  /// containing any marker is not resumable and the study re-runs in
  /// full, which is always correct — just slower.

  /// Stable identifier written into the checkpoint and matched on resume
  /// (a roster change means the blobs do not line up). Empty = no state.
  virtual std::string_view state_id() const { return {}; }
  /// Bumped whenever save_state's layout changes; a version mismatch
  /// re-baselines instead of misparsing an old blob.
  virtual std::uint32_t state_version() const { return 1; }
  /// Serializes everything accumulated so far (retained delta state AND
  /// cumulative results). Returns false (the default) to record a
  /// re-baseline marker.
  virtual bool save_state(StateWriter& w) const {
    (void)w;
    return false;
  }
  /// Restores a save_state image. Implementations must be atomic: either
  /// every member is overwritten from the blob, or false is returned with
  /// the analyzer untouched (deserialize into locals, then commit).
  virtual bool load_state(StateReader& r) {
    (void)r;
    return false;
  }
};

/// Crash-safety knobs for run_study (active only in incremental mode —
/// the checkpoint is the incremental engine's warm state).
struct CheckpointOptions {
  /// Where to write/read the .sckpt file; empty disables checkpointing.
  std::string path;
  /// Write a checkpoint every N analyzed weeks (1 = every week).
  std::size_t every = 1;
  /// Attempt to resume from an existing checkpoint at `path`. Off forces
  /// a fresh run even when a valid checkpoint exists.
  bool resume = true;
};

/// What the checkpoint layer did during one run_study call.
struct CheckpointReport {
  /// True when the run resumed from a checkpoint instead of starting at
  /// the first week.
  bool resumed = false;
  /// The checkpointed week the resume continued after (valid iff resumed).
  std::size_t resumed_week = 0;
  /// Why a present checkpoint was NOT resumed (validation failure,
  /// corruption, version skew, re-baseline marker...). Empty when resumed
  /// or when no checkpoint existed.
  std::string rebaseline_reason;
  std::size_t checkpoints_written = 0;
  /// Checkpoint writes that failed (the study continues; the previous
  /// checkpoint on disk stays valid thanks to the atomic write).
  std::size_t write_failures = 0;
  /// Timeline damage restored from the checkpoint — gaps in weeks the
  /// resumed run never revisited. Callers rendering data quality union
  /// these with the source's own gaps() (dedup by week).
  std::vector<SeriesGap> restored_gaps;
};

struct StudyOptions {
  /// Pool for the shared scan; null selects the process-global pool.
  ThreadPool* pool = nullptr;
  /// Rows per morsel (see kScanGrainRows). Results are bit-identical
  /// across thread counts for a FIXED grain; changing the grain changes
  /// chunk boundaries and may perturb floating-point last bits.
  std::size_t grain = kScanGrainRows;
  /// Decode week N+1 on the visiting thread while a pipeline thread
  /// analyzes week N. Analysis order and results are unchanged; off is
  /// useful for debugging and single-threaded profiling.
  bool prefetch = true;
  /// Compute the weekly diff as a kernel fused into the shared scan: the
  /// radix-partitioned index over week N is built right after N's decode
  /// (overlapping week N-1's analysis when prefetch is on), and the probe
  /// rides the same morsels as the analyzers instead of a separate full
  /// pass over the current table. Results are bit-identical either way;
  /// off preserves the standalone diff_snapshots reference path.
  bool fuse_diff = true;
  /// Use the flat aggregation layer (DESIGN.md §12): open-addressing count
  /// maps, the dictionary-encoded extension group-by, and the radix-
  /// partitioned merge for high-cardinality partials. Rendered results are
  /// byte-identical either way; off preserves the std::unordered_map
  /// reference path the determinism suite diffs against.
  bool flat_agg = true;
  /// Incremental mode (DESIGN.md §13): drive delta-capable analyzers
  /// (supports_delta) off a WeekDelta built from the diff — which then
  /// also carries the prev-row mapping and the directory diff — so their
  /// per-week cost is proportional to churn, not snapshot size. Weeks
  /// without a trustworthy delta (the first snapshot, after a gap, a
  /// salvage-damaged snapshot on either side of the diff) re-baseline with
  /// the full scan. Rendered results are byte-identical either way; off
  /// preserves the pure scan path.
  bool incremental = false;
  /// Durable checkpoint/resume (DESIGN.md §14). Requires `incremental`;
  /// ignored (with the reason recorded in the report) otherwise.
  CheckpointOptions checkpoint;
  /// When non-null, filled with what the checkpoint layer did.
  CheckpointReport* checkpoint_report = nullptr;
  /// Peak bytes the runner may spend holding snapshot rows (DESIGN.md
  /// §15). 0 = unlimited: every week is decoded resident, as before.
  /// With a budget, any week whose estimated resident footprint exceeds
  /// it is processed OUT OF CORE — decoded one .scol row group at a time
  /// with bounded group residency, and diffed through the spill join —
  /// while small weeks stay resident. Rendered results are byte-identical
  /// either way. Weeks a checkpoint must fingerprint are forced resident
  /// (the fingerprint folds whole column spans).
  std::size_t memory_budget = 0;
  /// Master switch for the out-of-core path. Off forces every week
  /// resident even when a memory_budget is set — the bit-identical
  /// reference the streaming parity tests diff against.
  bool streaming = true;
};

/// Streams `source` through all analyzers. The diff (when any analyzer
/// wants it) is computed once per week and shared.
void run_study(SnapshotSource& source,
               std::span<StudyAnalyzer* const> analyzers,
               const StudyOptions& options = {});

/// Convenience for a single analyzer.
void run_study(SnapshotSource& source, StudyAnalyzer& analyzer,
               const StudyOptions& options = {});

}  // namespace spider
