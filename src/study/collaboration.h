// Fig 20 / §4.3.3: collaboration across users. Two users collaborate when
// they generated files in the same project; the per-domain column is the
// share of collaborating pairs whose shared projects include that domain.
// Staff (stf) projects are excluded, as in the paper (liaison staff would
// dilute the science-collaboration signal). Consumes the participation
// analyzer's observed membership; place it after participation.
#pragma once

#include <string>

#include "graph/bipartite.h"
#include "study/participation.h"

namespace spider {

struct CollaborationResult {
  CollaborationStats stats;
  /// The extreme pair's shared-project domains, e.g. "5x cli + 1x csc".
  std::string max_pair_description;
};

class CollaborationAnalyzer : public StudyAnalyzer {
 public:
  CollaborationAnalyzer(const Resolver& resolver,
                        const ParticipationAnalyzer& participation)
      : resolver_(resolver), participation_(participation) {}

  /// Pure post-processing of participation's membership: reads no columns
  /// itself (participation requests what it needs).
  ColumnMask columns_needed() const override { return kColMaskNone; }
  void observe(const WeekObservation&) override {}  // pure post-processing
  void finish() override;

  const CollaborationResult& result() const { return result_; }
  std::string render() const;

 private:
  const Resolver& resolver_;
  const ParticipationAnalyzer& participation_;
  CollaborationResult result_;
};

}  // namespace spider
