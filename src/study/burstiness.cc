#include "study/burstiness.h"

#include <algorithm>
#include <span>
#include <sstream>
#include <unordered_map>

#include "engine/flat_map.h"
#include "util/table.h"
#include "util/timeutil.h"

namespace spider {

BurstinessAnalyzer::BurstinessAnalyzer(const Resolver& resolver,
                                       std::size_t min_files)
    : resolver_(resolver),
      min_files_(min_files),
      write_samples_(domain_count()),
      read_samples_(domain_count()) {}

void BurstinessAnalyzer::collect(const SnapshotTable& table,
                                 const std::vector<std::uint32_t>& rows,
                                 bool use_atime, std::int64_t window_start,
                                 std::vector<std::vector<double>>& out) {
  // Group timestamps by project (gid), offsets from the window start.
  std::unordered_map<std::uint32_t, StreamingStats> by_gid;
  for (const std::uint32_t row : rows) {
    const std::int64_t t = use_atime ? table.atime(row) : table.mtime(row);
    const double offset = static_cast<double>(t - window_start);
    if (offset < 0) continue;  // moved-in files predating the window
    by_gid[table.gid(row)].add(offset);
  }
  for (const auto& [gid, stats] : by_gid) {
    if (stats.count() < min_files_) continue;
    const int domain = resolver_.domain_of_gid(gid);
    if (domain < 0) continue;
    out[static_cast<std::size_t>(domain)].push_back(stats.cv());
  }
}

namespace {

/// Per-gid stats table: gids are raw dense ids, so the fingerprint mix
/// avalanches them before slot selection (see engine/flat_map.h).
using GidStatsMap = FlatMap<StreamingStats, FingerprintKeyMix>;

struct BurstinessChunk : ScanChunkState {
  // Per-project offset stats for the rows of this chunk's slice of the
  // diff lists; folded per gid in chunk (= row) order at merge time.
  GidStatsMap write_by_gid;
  GidStatsMap read_by_gid;
};

/// `rows` are GLOBAL cur-snapshot rows, all inside the morsel's range.
void accumulate_rows(const ScanMorsel& m, std::span<const std::uint32_t> rows,
                     bool use_atime, std::int64_t window_start,
                     GidStatsMap& by_gid) {
  const SnapshotTable& table = *m.table;
  for (const std::uint32_t row : rows) {
    const std::size_t r = m.local(row);
    const std::int64_t t = use_atime ? table.atime(r) : table.mtime(r);
    const double offset = static_cast<double>(t - window_start);
    if (offset < 0) continue;  // moved-in files predating the window
    by_gid.slot(table.gid(r)).add(offset);
  }
}

/// Accumulates the sub-range of `rows` falling in [m.begin, m.end) — the
/// diff row lists are ascending, so the chunk's slice is a binary search
/// away.
void accumulate_range(const ScanMorsel& m,
                      const std::vector<std::uint32_t>& rows, bool use_atime,
                      std::int64_t window_start, GidStatsMap& by_gid) {
  const auto lo = std::lower_bound(rows.begin(), rows.end(),
                                   static_cast<std::uint32_t>(m.begin));
  const auto hi =
      std::lower_bound(lo, rows.end(), static_cast<std::uint32_t>(m.end));
  accumulate_rows(m,
                  std::span<const std::uint32_t>(
                      rows.data() + (lo - rows.begin()),
                      static_cast<std::size_t>(hi - lo)),
                  use_atime, window_start, by_gid);
}

}  // namespace

std::unique_ptr<ScanChunkState> BurstinessAnalyzer::make_chunk_state() const {
  return std::make_unique<BurstinessChunk>();
}

void BurstinessAnalyzer::observe_chunk(ScanChunkState* state,
                                       const WeekObservation& obs,
                                       const ScanMorsel& m) {
  // Week gating (and its gap_pairs_skipped accounting) lives in merge(),
  // which runs exactly once per week; chunks only bail out cheaply.
  if (obs.diff == nullptr || obs.prev == nullptr) return;
  if (obs.snap->taken_at - obs.prev->taken_at > 8 * kSecondsPerDay) return;
  auto* chunk = static_cast<BurstinessChunk*>(state);
  const std::int64_t window_start = obs.prev->taken_at;
  if (obs.diff_chunks != nullptr) {
    // Fused diff: obs.diff is not assembled until merge time, but the
    // diff kernel (registered ahead of us) has already classified exactly
    // this chunk — its lists ARE our [m.begin, m.end) slice.
    const DiffChunkRows* rows = obs.diff_chunks->chunk_rows(m.begin);
    if (rows == nullptr) return;
    accumulate_rows(m, rows->rows[DiffChunkRows::kNew],
                    /*use_atime=*/false, window_start, chunk->write_by_gid);
    accumulate_rows(m, rows->rows[DiffChunkRows::kReadonly],
                    /*use_atime=*/true, window_start, chunk->read_by_gid);
    return;
  }
  // Unfused (and streaming): obs.diff is complete before the scan, so
  // each chunk takes its own global-row slice of the ascending lists.
  accumulate_range(m, obs.diff->new_rows, /*use_atime=*/false, window_start,
                   chunk->write_by_gid);
  accumulate_range(m, obs.diff->readonly_rows, /*use_atime=*/true,
                   window_start, chunk->read_by_gid);
}

void BurstinessAnalyzer::merge(const WeekObservation& obs,
                               ScanStateList states) {
  if (obs.gap_before) ++result_.gap_pairs_skipped;
  if (obs.diff == nullptr || obs.prev == nullptr) return;
  if (obs.snap->taken_at - obs.prev->taken_at > 8 * kSecondsPerDay) {
    ++result_.gap_pairs_skipped;
    return;
  }
  // Fold each project's chunk-local stats in chunk order — the fold order
  // is then a pure function of the row order, so the cv values are
  // identical at every thread count. Sample push order may differ from the
  // serial path's hash-iteration order, but five_number_summary and
  // percentile sort their inputs, so rendered results don't depend on it.
  auto fold = [&](bool read_side, std::vector<std::vector<double>>& out) {
    GidStatsMap by_gid;
    for (const auto& state : states) {
      const auto* chunk = static_cast<const BurstinessChunk*>(state.get());
      const auto& part = read_side ? chunk->read_by_gid : chunk->write_by_gid;
      part.for_each([&by_gid](std::uint64_t gid, const StreamingStats& stats) {
        by_gid.slot(gid).merge(stats);
      });
    }
    by_gid.for_each([&](std::uint64_t gid, const StreamingStats& stats) {
      if (stats.count() < min_files_) return;
      const int domain = resolver_.domain_of_gid(static_cast<std::uint32_t>(gid));
      if (domain < 0) return;
      out[static_cast<std::size_t>(domain)].push_back(stats.cv());
    });
  };
  fold(/*read_side=*/false, write_samples_);
  fold(/*read_side=*/true, read_samples_);
}

void BurstinessAnalyzer::observe(const WeekObservation& obs) {
  if (obs.gap_before) ++result_.gap_pairs_skipped;
  if (obs.diff == nullptr || obs.prev == nullptr) return;
  // Gap-spanning intervals (maintenance weeks) cover several activity
  // cycles and would smear multiple campaigns into one cv sample; the
  // paper's metric is strictly week-over-week.
  if (obs.snap->taken_at - obs.prev->taken_at > 8 * kSecondsPerDay) {
    ++result_.gap_pairs_skipped;
    return;
  }
  const std::int64_t window_start = obs.prev->taken_at;
  collect(obs.snap->table, obs.diff->new_rows, /*use_atime=*/false,
          window_start, write_samples_);
  collect(obs.snap->table, obs.diff->readonly_rows, /*use_atime=*/true,
          window_start, read_samples_);
}

void BurstinessAnalyzer::finish() {
  result_.write_cv_by_domain.assign(domain_count(), FiveNumber{});
  result_.read_cv_by_domain.assign(domain_count(), FiveNumber{});
  std::vector<double> all_write, all_read;
  for (std::size_t d = 0; d < domain_count(); ++d) {
    result_.write_cv_by_domain[d] = five_number_summary(write_samples_[d]);
    result_.read_cv_by_domain[d] = five_number_summary(read_samples_[d]);
    all_write.insert(all_write.end(), write_samples_[d].begin(),
                     write_samples_[d].end());
    all_read.insert(all_read.end(), read_samples_[d].begin(),
                    read_samples_[d].end());
  }
  result_.qualifying_write_samples = all_write.size();
  result_.qualifying_read_samples = all_read.size();
  result_.overall_write_cv_median = percentile(all_write, 50.0);
  result_.overall_read_cv_median = percentile(all_read, 50.0);
}

std::string BurstinessAnalyzer::render() const {
  std::ostringstream os;
  os << "Fig 17: burstiness cv per domain (lower = burstier; >="
     << min_files_ << "-file project-weeks only)\n";
  AsciiTable t({"domain", "write cv median", "write [q25,q75]",
                "read cv median", "read [q25,q75]", "paper w/r"});
  const auto profiles = domain_profiles();
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    const FiveNumber& w = result_.write_cv_by_domain[d];
    const FiveNumber& r = result_.read_cv_by_domain[d];
    if (w.count == 0 && r.count == 0) continue;
    auto range = [](const FiveNumber& fn) {
      return "[" + format_cv(fn.q25) + ", " + format_cv(fn.q75) + "]";
    };
    t.add_row({profiles[d].id,
               w.count ? format_cv(w.median) : std::string("-"),
               w.count ? range(w) : std::string("-"),
               r.count ? format_cv(r.median) : std::string("-"),
               r.count ? range(r) : std::string("-"),
               format_cv(profiles[d].write_cv) + "/" +
                   format_cv(profiles[d].read_cv)});
  }
  t.print(os);
  os << "overall medians: write cv "
     << format_cv(result_.overall_write_cv_median) << ", read cv "
     << format_cv(result_.overall_read_cv_median)
     << " (paper: reads ~100x burstier than writes)\n";
  if (result_.gap_pairs_skipped > 0) {
    os << "note: " << result_.gap_pairs_skipped
       << " interval(s) skipped at series gaps or gap-spanning windows\n";
  }
  return os.str();
}

}  // namespace spider
