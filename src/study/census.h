// Figs 7-9: the file/directory census.
//   Fig 7 — unique files and directories per science domain across all
//           snapshots, and the directory:entry ratio;
//   Fig 8(a) — CDF of per-project maximum directory depth;
//   Fig 8(b) — CDF of unique file counts per user and per project;
//   Fig 9 — per-domain directory-depth five-number summaries.
// "Unique" counts deduplicate by path across the whole series (deleted
// files still count once), exactly as the paper aggregates.
#pragma once

#include <string>
#include <vector>

#include "engine/flat_map.h"
#include "engine/u64set.h"
#include "study/resolve.h"
#include "study/runner.h"
#include "util/stats.h"

namespace spider {

struct CensusResult {
  // Fig 7.
  std::vector<std::uint64_t> files_by_domain;
  std::vector<std::uint64_t> dirs_by_domain;
  std::uint64_t total_files = 0;
  std::uint64_t total_dirs = 0;
  double dir_fraction(std::size_t domain) const;

  // Fig 8(b).
  EmpiricalCdf files_per_user;
  EmpiricalCdf files_per_project;
  std::uint64_t max_files_one_user = 0;
  std::uint64_t max_files_one_project = 0;
  double median_files_per_user = 0;
  double median_files_per_project = 0;

  // Fig 8(a) / Fig 9.
  EmpiricalCdf project_max_depth;
  std::vector<FiveNumber> depth_by_domain;  // over unique directories
  std::uint64_t max_depth = 0;

  // Empty directories in the final snapshot (the paper notes the purge
  // "deletes only files but not directories", leaving empty dirs behind
  // that users are responsible for cleaning up).
  std::uint64_t final_empty_dirs = 0;
  std::uint64_t final_dirs = 0;
  double final_empty_dir_fraction() const {
    return final_dirs == 0 ? 0.0
                           : static_cast<double>(final_empty_dirs) /
                                 static_cast<double>(final_dirs);
  }
};

class CensusAnalyzer : public StudyAnalyzer {
 public:
  explicit CensusAnalyzer(const Resolver& resolver);

  ColumnMask columns_needed() const override {
    return kColMaskPaths | kColMaskUid | kColMaskGid | kColMaskMode;
  }
  std::unique_ptr<ScanChunkState> make_chunk_state() const override;
  void observe_chunk(ScanChunkState* state, const WeekObservation& obs,
                     const ScanMorsel& m) override;
  void merge(const WeekObservation& obs, ScanStateList states) override;

  /// Serial reference path (bench baseline; see DESIGN.md §10).
  void observe(const WeekObservation& obs) override;
  /// Delta port: the unique-entry census consumes only new rows (a matched
  /// row kept its path, so its hash was already claimed), and the per-week
  /// empty-directory census rolls forward two retained reference-count
  /// maps — parent hash -> rows naming it as parent, and live dir hashes —
  /// adjusted only by created and deleted rows (renames don't exist;
  /// updated rows keep their paths).
  bool supports_delta() const override { return true; }
  void apply_delta(const WeekObservation& obs,
                   const WeekDelta& delta) override;
  void finish() override;

  std::string_view state_id() const override { return "census"; }
  bool save_state(StateWriter& w) const override;
  bool load_state(StateReader& r) override;

  const CensusResult& result() const { return result_; }
  std::string render() const;

 private:
  void rebuild_live_maps(const SnapshotTable& table);

  const Resolver& resolver_;
  U64Set distinct_;
  std::vector<std::uint64_t> files_by_user_;     // dense user index
  std::vector<std::uint64_t> files_by_project_;  // dense project index
  std::vector<std::uint16_t> max_depth_by_project_;
  std::vector<std::vector<double>> dir_depths_by_domain_;
  /// Retained live-population state for the delta path, rebuilt on every
  /// full-scan week of an incremental run (baseline and re-baseline):
  /// reference counts of parent-path hashes over all rows, and of dir-path
  /// hashes. Signed so transient decrement-then-increment orders are safe.
  FlatMap<std::int64_t> parent_live_;
  FlatMap<std::int64_t> dirs_live_;
  CensusResult result_;
};

}  // namespace spider
