#include "study/census.h"

#include <algorithm>
#include <span>
#include <sstream>
#include <utility>

#include "engine/agg.h"
#include "util/table.h"

namespace spider {

double CensusResult::dir_fraction(std::size_t domain) const {
  const std::uint64_t files = files_by_domain[domain];
  const std::uint64_t dirs = dirs_by_domain[domain];
  const std::uint64_t total = files + dirs;
  return total == 0 ? 0.0
                    : static_cast<double>(dirs) / static_cast<double>(total);
}

CensusAnalyzer::CensusAnalyzer(const Resolver& resolver)
    : resolver_(resolver),
      files_by_user_(resolver.plan().users.size(), 0),
      files_by_project_(resolver.plan().projects.size(), 0),
      max_depth_by_project_(resolver.plan().projects.size(), 0),
      dir_depths_by_domain_(domain_count()) {
  result_.files_by_domain.assign(domain_count(), 0);
  result_.dirs_by_domain.assign(domain_count(), 0);
}

namespace {
/// A row whose path hash was absent from the cross-week distinct set when
/// the chunk scanned it — possibly first-seen, resolved in merge(). The
/// resolver lookups happen here, in parallel, so merge() stays a cheap
/// insert-and-count loop.
struct CensusCandidate {
  std::uint64_t hash = 0;
  std::uint16_t depth = 0;
  bool is_dir = false;
  std::int32_t project = -1;
  std::int32_t domain = -1;
  std::int32_t user = -1;  // files only
};

struct CensusChunk : ScanChunkState {
  std::vector<std::uint64_t> parent_hashes;  // every row's parent dir
  std::vector<std::uint64_t> dir_hashes;     // path hash of each dir row
  std::vector<CensusCandidate> candidates;   // row order
  U64Set local;                              // chunk-local candidate dedup
};
}  // namespace

std::unique_ptr<ScanChunkState> CensusAnalyzer::make_chunk_state() const {
  return std::make_unique<CensusChunk>();
}

void CensusAnalyzer::observe_chunk(ScanChunkState* state,
                                   const WeekObservation&,
                                   const ScanMorsel& m) {
  auto* chunk = static_cast<CensusChunk*>(state);
  const SnapshotTable& table = *m.table;
  chunk->parent_hashes.reserve(m.end - m.begin);
  for (std::size_t i = m.begin; i < m.end; ++i) {
    const std::size_t r = m.local(i);
    chunk->parent_hashes.push_back(hash_bytes(path_parent(table.path(r))));
    const bool is_dir = table.is_dir(r);
    if (is_dir) chunk->dir_hashes.push_back(table.path_hash(r));

    const std::uint64_t hash = table.path_hash(r);
    if (distinct_.contains(hash) || !chunk->local.insert(hash)) continue;
    CensusCandidate cand;
    cand.hash = hash;
    cand.depth = table.depth(r);
    cand.is_dir = is_dir;
    cand.project = resolver_.project_of_gid(table.gid(r));
    cand.domain =
        cand.project < 0
            ? -1
            : resolver_.plan()
                  .projects[static_cast<std::size_t>(cand.project)]
                  .domain;
    if (!is_dir) cand.user = resolver_.user_of_uid(table.uid(r));
    chunk->candidates.push_back(cand);
  }
}

void CensusAnalyzer::merge(const WeekObservation& obs, ScanStateList states) {
  // Empty-directory census for this snapshot: union the chunks' parent
  // sets, then count dirs no other entry names as parent. Set membership
  // and the counts are order-independent, so both steps may run in
  // parallel — this union is the highest-cardinality merge in the study
  // (every row contributes a parent hash) and used to be the scan's
  // serial tail.
  if (obs.flat_agg) {
    std::vector<std::span<const std::uint64_t>> spans;
    spans.reserve(states.size());
    for (const auto& state : states) {
      const auto* chunk = static_cast<const CensusChunk*>(state.get());
      spans.emplace_back(chunk->parent_hashes);
    }
    PartitionedU64Set parents;
    parents.build(spans, obs.pool);
    struct Tally {
      std::uint64_t empty = 0;
      std::uint64_t dirs = 0;
    };
    const Tally tally = parallel_reduce<Tally>(
        states.size(), Tally{},
        [&](Tally& acc, std::size_t c) {
          const auto* chunk = static_cast<const CensusChunk*>(states[c].get());
          acc.dirs += chunk->dir_hashes.size();
          for (const std::uint64_t h : chunk->dir_hashes) {
            if (!parents.contains(h)) ++acc.empty;
          }
        },
        [](Tally& into, Tally& from) {
          into.empty += from.empty;
          into.dirs += from.dirs;
        },
        obs.pool, /*grain=*/1);
    result_.final_empty_dirs = tally.empty;
    result_.final_dirs = tally.dirs;
  } else {
    U64Set parents(obs.row_count);
    for (const auto& state : states) {
      const auto* chunk = static_cast<const CensusChunk*>(state.get());
      for (const std::uint64_t h : chunk->parent_hashes) parents.insert(h);
    }
    std::uint64_t empty = 0, dirs = 0;
    for (const auto& state : states) {
      const auto* chunk = static_cast<const CensusChunk*>(state.get());
      dirs += chunk->dir_hashes.size();
      for (const std::uint64_t h : chunk->dir_hashes) {
        if (!parents.contains(h)) ++empty;
      }
    }
    result_.final_empty_dirs = empty;
    result_.final_dirs = dirs;
  }
  if (obs.incremental) rebuild_live_maps(obs.snap->table);

  // Unique-entry census: first-seen resolution in chunk (= row) order,
  // byte-identical to the serial scan.
  for (const auto& state : states) {
    const auto* chunk = static_cast<const CensusChunk*>(state.get());
    for (const CensusCandidate& cand : chunk->candidates) {
      if (!distinct_.insert(cand.hash)) continue;  // seen in earlier chunk
      result_.max_depth = std::max<std::uint64_t>(result_.max_depth,
                                                  cand.depth);
      if (cand.is_dir) {
        ++result_.total_dirs;
        if (cand.domain >= 0) {
          ++result_.dirs_by_domain[static_cast<std::size_t>(cand.domain)];
          dir_depths_by_domain_[static_cast<std::size_t>(cand.domain)]
              .push_back(cand.depth);
        }
        if (cand.project >= 0) {
          auto& best =
              max_depth_by_project_[static_cast<std::size_t>(cand.project)];
          best = std::max(best, cand.depth);
        }
      } else {
        ++result_.total_files;
        if (cand.domain >= 0) {
          ++result_.files_by_domain[static_cast<std::size_t>(cand.domain)];
        }
        if (cand.project >= 0) {
          ++files_by_project_[static_cast<std::size_t>(cand.project)];
        }
        if (cand.user >= 0) {
          ++files_by_user_[static_cast<std::size_t>(cand.user)];
        }
      }
    }
  }
}

void CensusAnalyzer::observe(const WeekObservation& obs) {
  const SnapshotTable& table = obs.snap->table;

  // Empty-directory census: a directory is empty when no other entry in
  // the same snapshot names it as parent. Recomputed per snapshot so the
  // final week's value survives; one hash-set pass.
  {
    U64Set parents(table.size());
    for (std::size_t i = 0; i < table.size(); ++i) {
      parents.insert(hash_bytes(path_parent(table.path(i))));
    }
    std::uint64_t empty = 0, dirs = 0;
    for (std::size_t i = 0; i < table.size(); ++i) {
      if (!table.is_dir(i)) continue;
      ++dirs;
      if (!parents.contains(table.path_hash(i))) ++empty;
    }
    result_.final_empty_dirs = empty;
    result_.final_dirs = dirs;
  }
  if (obs.incremental) rebuild_live_maps(table);

  for (std::size_t i = 0; i < table.size(); ++i) {
    if (!distinct_.insert(table.path_hash(i))) continue;  // seen before
    const int project = resolver_.project_of_gid(table.gid(i));
    const int domain = project < 0
                           ? -1
                           : resolver_.plan()
                                 .projects[static_cast<std::size_t>(project)]
                                 .domain;
    const std::uint16_t depth = table.depth(i);
    result_.max_depth = std::max<std::uint64_t>(result_.max_depth, depth);
    if (table.is_dir(i)) {
      ++result_.total_dirs;
      if (domain >= 0) {
        ++result_.dirs_by_domain[static_cast<std::size_t>(domain)];
        dir_depths_by_domain_[static_cast<std::size_t>(domain)].push_back(
            depth);
      }
      if (project >= 0) {
        auto& best = max_depth_by_project_[static_cast<std::size_t>(project)];
        best = std::max(best, depth);
      }
    } else {
      ++result_.total_files;
      if (domain >= 0) {
        ++result_.files_by_domain[static_cast<std::size_t>(domain)];
      }
      if (project >= 0) {
        ++files_by_project_[static_cast<std::size_t>(project)];
      }
      const int user = resolver_.user_of_uid(table.uid(i));
      if (user >= 0) ++files_by_user_[static_cast<std::size_t>(user)];
    }
  }
}

void CensusAnalyzer::rebuild_live_maps(const SnapshotTable& table) {
  parent_live_.clear();
  dirs_live_.clear();
  for (std::size_t i = 0; i < table.size(); ++i) {
    ++parent_live_.slot(hash_bytes(path_parent(table.path(i))));
    if (table.is_dir(i)) ++dirs_live_.slot(table.path_hash(i));
  }
}

void CensusAnalyzer::apply_delta(const WeekObservation&,
                                 const WeekDelta& delta) {
  const SnapshotTable& cur = *delta.cur;
  const SnapshotTable& prev = *delta.prev;
  const DiffResult& diff = *delta.diff;

  // Empty-directory census: adjust the retained reference counts by the
  // rows that entered and left the namespace, then recount live dirs with
  // no live children. Updated/changed rows keep their paths, so only
  // created and deleted rows move the counts.
  for (const std::uint32_t row : delta.added_rows) {
    ++parent_live_.slot(hash_bytes(path_parent(cur.path(row))));
  }
  for (const std::uint32_t row : diff.deleted_rows) {
    --parent_live_.slot(hash_bytes(path_parent(prev.path(row))));
  }
  for (const std::uint32_t row : diff.deleted_dir_rows) {
    --parent_live_.slot(hash_bytes(path_parent(prev.path(row))));
  }
  for (const std::uint32_t row : diff.new_dir_rows) {
    ++dirs_live_.slot(cur.path_hash(row));
  }
  for (const std::uint32_t row : diff.deleted_dir_rows) {
    --dirs_live_.slot(prev.path_hash(row));
  }
  std::uint64_t dirs = 0, empty = 0;
  dirs_live_.for_each([&](std::uint64_t hash, std::int64_t count) {
    if (count <= 0) return;
    dirs += static_cast<std::uint64_t>(count);
    const std::int64_t* parents = parent_live_.find(hash);
    if (parents == nullptr || *parents <= 0) {
      empty += static_cast<std::uint64_t>(count);
    }
  });
  result_.final_empty_dirs = empty;
  result_.final_dirs = dirs;

  // Unique-entry census: only new rows can be first-seen, in the same
  // ascending order the scan path resolves candidates.
  for (const std::uint32_t row : delta.added_rows) {
    if (!distinct_.insert(cur.path_hash(row))) continue;
    const int project = resolver_.project_of_gid(cur.gid(row));
    const int domain = project < 0
                           ? -1
                           : resolver_.plan()
                                 .projects[static_cast<std::size_t>(project)]
                                 .domain;
    const std::uint16_t depth = cur.depth(row);
    result_.max_depth = std::max<std::uint64_t>(result_.max_depth, depth);
    if (cur.is_dir(row)) {
      ++result_.total_dirs;
      if (domain >= 0) {
        ++result_.dirs_by_domain[static_cast<std::size_t>(domain)];
        dir_depths_by_domain_[static_cast<std::size_t>(domain)].push_back(
            depth);
      }
      if (project >= 0) {
        auto& best = max_depth_by_project_[static_cast<std::size_t>(project)];
        best = std::max(best, depth);
      }
    } else {
      ++result_.total_files;
      if (domain >= 0) {
        ++result_.files_by_domain[static_cast<std::size_t>(domain)];
      }
      if (project >= 0) {
        ++files_by_project_[static_cast<std::size_t>(project)];
      }
      const int user = resolver_.user_of_uid(cur.uid(row));
      if (user >= 0) ++files_by_user_[static_cast<std::size_t>(user)];
    }
  }
}

bool CensusAnalyzer::save_state(StateWriter& w) const {
  distinct_.save_state(w);
  w.vec(files_by_user_);
  w.vec(files_by_project_);
  w.vec(max_depth_by_project_);
  w.vec2(dir_depths_by_domain_);
  parent_live_.save_state(w);
  dirs_live_.save_state(w);
  w.vec(result_.files_by_domain);
  w.vec(result_.dirs_by_domain);
  w.u64(result_.total_files);
  w.u64(result_.total_dirs);
  w.u64(result_.max_depth);
  w.u64(result_.final_empty_dirs);
  w.u64(result_.final_dirs);
  return true;
}

bool CensusAnalyzer::load_state(StateReader& r) {
  U64Set distinct;
  std::vector<std::uint64_t> files_by_user, files_by_project;
  std::vector<std::uint16_t> max_depth_by_project;
  std::vector<std::vector<double>> dir_depths;
  FlatMap<std::int64_t> parent_live, dirs_live;
  std::vector<std::uint64_t> files_by_domain, dirs_by_domain;
  if (!distinct.load_state(r) || !r.vec(&files_by_user) ||
      !r.vec(&files_by_project) || !r.vec(&max_depth_by_project) ||
      !r.vec2(&dir_depths) || !parent_live.load_state(r) ||
      !dirs_live.load_state(r) || !r.vec(&files_by_domain) ||
      !r.vec(&dirs_by_domain)) {
    return false;
  }
  const std::uint64_t total_files = r.u64();
  const std::uint64_t total_dirs = r.u64();
  const std::uint64_t max_depth = r.u64();
  const std::uint64_t final_empty_dirs = r.u64();
  const std::uint64_t final_dirs = r.u64();
  // Per-user/project/domain vectors are sized by the resolver's plan; a
  // mismatch means the checkpoint came from a different configuration.
  if (!r.ok() || files_by_user.size() != files_by_user_.size() ||
      files_by_project.size() != files_by_project_.size() ||
      max_depth_by_project.size() != max_depth_by_project_.size() ||
      dir_depths.size() != dir_depths_by_domain_.size() ||
      files_by_domain.size() != result_.files_by_domain.size() ||
      dirs_by_domain.size() != result_.dirs_by_domain.size()) {
    return false;
  }
  distinct_ = std::move(distinct);
  files_by_user_ = std::move(files_by_user);
  files_by_project_ = std::move(files_by_project);
  max_depth_by_project_ = std::move(max_depth_by_project);
  dir_depths_by_domain_ = std::move(dir_depths);
  parent_live_ = std::move(parent_live);
  dirs_live_ = std::move(dirs_live);
  result_.files_by_domain = std::move(files_by_domain);
  result_.dirs_by_domain = std::move(dirs_by_domain);
  result_.total_files = total_files;
  result_.total_dirs = total_dirs;
  result_.max_depth = max_depth;
  result_.final_empty_dirs = final_empty_dirs;
  result_.final_dirs = final_dirs;
  return true;
}

void CensusAnalyzer::finish() {
  std::vector<double> user_counts, project_counts, depths;
  for (const std::uint64_t c : files_by_user_) {
    if (c > 0) {
      user_counts.push_back(static_cast<double>(c));
      result_.max_files_one_user = std::max(result_.max_files_one_user, c);
    }
  }
  for (const std::uint64_t c : files_by_project_) {
    if (c > 0) {
      project_counts.push_back(static_cast<double>(c));
      result_.max_files_one_project =
          std::max(result_.max_files_one_project, c);
    }
  }
  for (const std::uint16_t d : max_depth_by_project_) {
    if (d > 0) depths.push_back(static_cast<double>(d));
  }
  result_.median_files_per_user = percentile(user_counts, 50.0);
  result_.median_files_per_project = percentile(project_counts, 50.0);
  result_.files_per_user = EmpiricalCdf(std::move(user_counts));
  result_.files_per_project = EmpiricalCdf(std::move(project_counts));
  result_.project_max_depth = EmpiricalCdf(std::move(depths));
  result_.depth_by_domain.assign(domain_count(), FiveNumber{});
  for (std::size_t d = 0; d < dir_depths_by_domain_.size(); ++d) {
    result_.depth_by_domain[d] = five_number_summary(dir_depths_by_domain_[d]);
  }
}

std::string CensusAnalyzer::render() const {
  std::ostringstream os;
  os << "Fig 7: unique entries per domain (total "
     << format_with_commas(result_.total_files) << " files, "
     << format_with_commas(result_.total_dirs) << " dirs; dirs are "
     << format_percent(static_cast<double>(result_.total_dirs) /
                       static_cast<double>(std::max<std::uint64_t>(
                           1, result_.total_files + result_.total_dirs)))
     << " of entries)\n";
  AsciiTable census({"domain", "files", "dirs", "dir share"});
  const auto profiles = domain_profiles();
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    if (result_.files_by_domain[d] + result_.dirs_by_domain[d] == 0) continue;
    census.add_row({profiles[d].id,
                    format_with_commas(result_.files_by_domain[d]),
                    format_with_commas(result_.dirs_by_domain[d]),
                    format_percent(result_.dir_fraction(d))});
  }
  census.print(os);

  os << "\nFig 8(a): project max directory depth CDF\n"
     << "  projects with depth > 10: "
     << format_percent(1.0 - result_.project_max_depth.fraction_at_most(10))
     << " (paper: >30%)\n"
     << "  projects with depth > 15: "
     << format_percent(1.0 - result_.project_max_depth.fraction_at_most(15))
     << " (paper: <3%... small)\n"
     << "  deepest path: " << result_.max_depth << " (paper: 432; 2030 stf)\n";

  os << "\nFig 8(b): unique files per user / project\n"
     << "  median files per user:    "
     << format_count(result_.median_files_per_user) << "\n"
     << "  median files per project: "
     << format_count(result_.median_files_per_project) << "\n"
     << "  max files one user:       "
     << format_count(static_cast<double>(result_.max_files_one_user)) << "\n"
     << "  max files one project:    "
     << format_count(static_cast<double>(result_.max_files_one_project))
     << "\n";

  os << "\nempty directories in the final snapshot: "
     << format_with_commas(result_.final_empty_dirs) << " of "
     << format_with_commas(result_.final_dirs) << " ("
     << format_percent(result_.final_empty_dir_fraction())
     << ") — purge deletes files, never directories\n";

  os << "\nFig 9: directory depth by domain (min/q25/median/q75/max)\n";
  AsciiTable depth({"domain", "min", "q25", "median", "q75", "max"});
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    const FiveNumber& fn = result_.depth_by_domain[d];
    if (fn.count == 0) continue;
    depth.add_row({profiles[d].id, format_double(fn.min, 0),
                   format_double(fn.q25, 0), format_double(fn.median, 0),
                   format_double(fn.q75, 0), format_double(fn.max, 0)});
  }
  depth.print(os);
  return os.str();
}

}  // namespace spider
