#include "study/joblog.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "engine/diff.h"
#include "util/table.h"

namespace spider {

JobLogResult analyze_job_log(FacilityGenerator& generator,
                             const Resolver& resolver) {
  JobLogResult result;
  result.jobs_by_domain.assign(domain_count(), 0);

  // Jobs of the current snapshot interval accumulate here; each emitted
  // snapshot closes the interval.
  std::uint64_t interval_jobs = 0;
  std::vector<double> write_job_files;

  Snapshot prev;
  bool have_prev = false;

  generator.visit_with_jobs(
      [&](std::size_t, const Snapshot& snap) {
        if (have_prev) {
          const DiffResult diff = diff_snapshots(prev.table, snap.table);
          result.jobs_per_interval.push_back(interval_jobs);
          result.new_files_per_interval.push_back(diff.new_rows.size());
        }
        interval_jobs = 0;
        // Retain the snapshot for the next interval's diff.
        prev.taken_at = snap.taken_at;
        prev.table = SnapshotTable();
        prev.table.reserve(snap.table.size());
        for (std::size_t i = 0; i < snap.table.size(); ++i) {
          prev.table.add(snap.table.path(i), snap.table.atime(i),
                         snap.table.ctime(i), snap.table.mtime(i),
                         snap.table.uid(i), snap.table.gid(i),
                         snap.table.mode(i), snap.table.inode(i),
                         snap.table.osts(i));
        }
        have_prev = true;
      },
      [&](const JobRecord& job) {
        const int domain =
            resolver.plan().projects[job.project].domain;
        ++result.jobs_by_domain[static_cast<std::size_t>(domain)];
        if (job.files_written > 0) {
          ++result.write_jobs;
          ++interval_jobs;
          result.files_written += job.files_written;
          write_job_files.push_back(static_cast<double>(job.files_written));
        }
        if (job.files_read > 0) {
          ++result.read_jobs;
          result.files_read += job.files_read;
        }
      });

  result.files_per_write_job = five_number_summary(write_job_files);

  std::vector<double> x, y;
  for (std::size_t i = 0; i < result.jobs_per_interval.size(); ++i) {
    x.push_back(static_cast<double>(result.jobs_per_interval[i]));
    y.push_back(static_cast<double>(result.new_files_per_interval[i]));
  }
  const LinearFit fit = linear_fit(x, y);
  result.job_newfile_correlation =
      (fit.slope < 0 ? -1.0 : 1.0) * std::sqrt(std::max(0.0, fit.r2));
  return result;
}

std::string render_job_log(const JobLogResult& result) {
  std::ostringstream os;
  os << "Job-log fusion (paper future work): " << result.write_jobs
     << " write jobs (" << format_with_commas(result.files_written)
     << " files), " << result.read_jobs << " read jobs ("
     << format_with_commas(result.files_read) << " file reads)\n";
  os << "files per write job (min/q25/med/q75/max): "
     << format_double(result.files_per_write_job.min, 0) << "/"
     << format_double(result.files_per_write_job.q25, 0) << "/"
     << format_double(result.files_per_write_job.median, 0) << "/"
     << format_double(result.files_per_write_job.q75, 0) << "/"
     << format_double(result.files_per_write_job.max, 0) << "\n";
  os << "weekly write jobs vs snapshot-diff new files: Pearson r = "
     << format_double(result.job_newfile_correlation, 3)
     << " — the metadata channel tracks scheduler activity\n";

  os << "\nbusiest domains by job count:\n";
  AsciiTable t({"domain", "jobs"});
  const auto profiles = domain_profiles();
  std::vector<std::pair<std::uint64_t, std::size_t>> order;
  for (std::size_t d = 0; d < profiles.size(); ++d) {
    if (result.jobs_by_domain[d] > 0) {
      order.emplace_back(result.jobs_by_domain[d], d);
    }
  }
  std::sort(order.rbegin(), order.rend());
  for (std::size_t i = 0; i < 10 && i < order.size(); ++i) {
    t.add_row({profiles[order[i].second].id,
               format_with_commas(order[i].first)});
  }
  t.print(os);
  return os.str();
}

}  // namespace spider
