#include "study/growth.h"

#include <sstream>
#include <utility>

#include "util/table.h"
#include "util/timeutil.h"

namespace spider {

void GrowthAnalyzer::observe(const WeekObservation& obs) {
  GrowthPoint point;
  point.date = obs.snap->taken_at;
  point.files = obs.file_count;
  point.dirs = obs.dir_count;
  point.after_gap = obs.gap_before;
  if (obs.gap_before) ++result_.gap_weeks;
  result_.points.push_back(point);
}

bool GrowthAnalyzer::save_state(StateWriter& w) const {
  w.vec(result_.points);
  w.u64(result_.gap_weeks);
  return true;
}

bool GrowthAnalyzer::load_state(StateReader& r) {
  std::vector<GrowthPoint> points;
  if (!r.vec(&points)) return false;
  const std::uint64_t gap_weeks = r.u64();
  if (!r.ok()) return false;
  result_.points = std::move(points);
  result_.gap_weeks = static_cast<std::size_t>(gap_weeks);
  return true;
}

void GrowthAnalyzer::finish() {
  if (result_.points.empty()) return;
  const GrowthPoint& first = result_.points.front();
  const GrowthPoint& last = result_.points.back();
  result_.growth_factor =
      first.files == 0 ? 0.0
                       : static_cast<double>(last.files) /
                             static_cast<double>(first.files);
  const std::uint64_t entries = last.files + last.dirs;
  result_.final_dir_share =
      entries == 0 ? 0.0
                   : static_cast<double>(last.dirs) /
                         static_cast<double>(entries);
}

std::string GrowthAnalyzer::render() const {
  std::ostringstream os;
  os << "Fig 15: live file/directory growth\n";
  AsciiTable t({"snapshot", "files", "dirs", "dir share"});
  const std::size_t step =
      std::max<std::size_t>(1, result_.points.size() / 14);
  for (std::size_t i = 0; i < result_.points.size(); i += step) {
    const GrowthPoint& p = result_.points[i];
    t.add_row({date_iso(p.date), format_with_commas(p.files),
               format_with_commas(p.dirs),
               format_percent(static_cast<double>(p.dirs) /
                              static_cast<double>(std::max<std::uint64_t>(
                                  1, p.files + p.dirs)))});
  }
  if ((result_.points.size() - 1) % step != 0 && !result_.points.empty()) {
    const GrowthPoint& p = result_.points.back();
    t.add_row({date_iso(p.date), format_with_commas(p.files),
               format_with_commas(p.dirs),
               format_percent(result_.final_dir_share)});
  }
  t.print(os);
  os << "growth factor " << format_double(result_.growth_factor, 2)
     << "x (paper: ~5x, 200M -> 1B); final dir share "
     << format_percent(result_.final_dir_share) << " (paper: <10%)\n";
  if (result_.gap_weeks > 0) {
    os << "note: " << result_.gap_weeks
       << " week(s) follow a series gap; their step spans more than one "
          "collection interval\n";
  }
  return os.str();
}

}  // namespace spider
