// Purge-list generation — the operational raison d'être of the LustreDU
// snapshots (paper §2.2): every night the latest snapshot is scanned and
// files whose atime is older than the policy window become purge
// candidates. This module reproduces that pipeline over a SnapshotTable
// and is what the purge-window ablations and the snapshot_tool's
// `purgelist` command drive.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "engine/agg.h"
#include "snapshot/table.h"

namespace spider {

struct PurgePolicy {
  /// Files not accessed within this many days are candidates.
  int age_days = 90;
  /// Project directory names exempt from purging (operational waivers).
  std::vector<std::string> exempt_projects;
};

struct PurgeReport {
  /// Candidate rows in the scanned snapshot, ascending.
  std::vector<std::uint32_t> candidate_rows;
  std::uint64_t scanned_files = 0;
  std::uint64_t exempted_files = 0;
  /// Candidates per project directory name.
  CountMap<std::string> by_project;

  std::uint64_t candidates() const { return candidate_rows.size(); }
  double candidate_fraction() const {
    return scanned_files == 0
               ? 0.0
               : static_cast<double>(candidate_rows.size()) /
                     static_cast<double>(scanned_files);
  }
};

/// Scans `table` (one snapshot) as of time `now` under `policy`.
/// Directories are never candidates (purge removes files only).
PurgeReport build_purge_list(const SnapshotTable& table, std::int64_t now,
                             const PurgePolicy& policy);

/// Writes candidate paths, one per line (the nightly purge list file);
/// returns bytes written.
std::uint64_t write_purge_list(const SnapshotTable& table,
                               const PurgeReport& report, std::ostream& os);

}  // namespace spider
