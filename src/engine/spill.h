// Spill-to-disk diff join: the out-of-core half of the week-over-week
// snapshot diff (DESIGN.md §15).
//
// The in-memory strategies in engine/diff.h hold the previous week's path
// index — and with it the previous week's table — resident for the whole
// probe. Under a streaming study (study/runner.cc with a memory budget)
// neither week is resident: each arrives one row group at a time. This
// layer replaces the resident index with disk partitions:
//
//   1. Each side spills its diff-relevant columns (path hash, row, kind,
//      three timestamps, path bytes) into 1<<bits partition files keyed by
//      the TOP bits of the path hash — the same convention as
//      RadixPartitions::partition_of, so a path lands in partition p on
//      both sides and the join never crosses partition boundaries.
//   2. spill_diff_join loads ONE partition pair at a time, sort-merges it
//      exactly like diff_snapshots_sortmerge (sort both sides by
//      (hash, path), walk, classify on timestamp equality), and appends to
//      the global class lists. Peak memory is one partition pair plus the
//      result, never a whole week.
//   3. A final ascending-by-row sort per class restores the hash join's
//      row-order contract; the sortmerge strategy's parity tests are the
//      precedent that classify-then-final-sort is bit-identical to
//      diff_snapshots.
//
// Partition files are temp files, not atomically-written artifacts, so
// every file carries a trailer with a record count and a running checksum.
// A reader that finds a damaged partition asks the owning side to
// regenerate it (the side that spilled the data can always re-derive it —
// re-scan the resident table or re-decode the week's row groups) and
// retries once before giving up.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/diff.h"
#include "snapshot/table.h"
#include "util/status.h"

namespace spider {

/// Picks the spill fan-out for a side of `rows` total rows: enough
/// partitions that one partition pair stays comfortably inside
/// `partition_budget` bytes (estimating `bytes_per_row` spilled bytes per
/// row), clamped to [0, 8] bits (1..256 files). 0 bits = one partition,
/// the degenerate "everything spills but nothing is split" case.
std::uint32_t spill_bits_for(std::uint64_t rows, std::size_t bytes_per_row,
                             std::size_t partition_budget);

/// One side's spilled snapshot: the partition files on disk plus the hook
/// that rewrites one of them after a checksum failure. `files[p]` holds
/// every record whose path hash maps to partition p.
struct SpilledSide {
  std::uint32_t bits = 0;
  std::vector<std::string> files;  // size 1 << bits
  std::uint64_t file_rows = 0;     // non-directory records across partitions
  std::uint64_t dir_rows = 0;
  /// Rewrites files[p] from the original data. Null = no recovery; a
  /// checksum failure is then immediately fatal.
  std::function<Status(std::size_t p)> regenerate;
};

/// Streams one snapshot's diff-relevant columns into partition files.
/// Feed rows in ascending row order (whole table or group-at-a-time);
/// finish() seals every file with its trailer. The writer buffers a few
/// hundred KiB per partition and appends through plain file descriptors —
/// these are scratch files, recreated on demand, so the atomic-rename
/// discipline of write_file_atomic would buy nothing.
class SpillPartitionWriter {
 public:
  struct Options {
    std::string dir;   // existing directory that receives the files
    std::string stem;  // file name prefix, e.g. "w0012-cur"
    std::uint32_t bits = 0;  // 1 << bits partition files, at most 8 bits
  };

  SpillPartitionWriter() = default;
  ~SpillPartitionWriter();
  SpillPartitionWriter(const SpillPartitionWriter&) = delete;
  SpillPartitionWriter& operator=(const SpillPartitionWriter&) = delete;

  /// Creates (truncating) the 1<<bits partition files.
  Status open(const Options& options);

  /// Appends one row. `row` is the row's GLOBAL position in its snapshot
  /// (streaming callers add the group base), which is exactly the value
  /// the diff result reports.
  Status add(std::uint64_t path_hash, std::uint32_t row, bool is_dir,
             std::int64_t atime, std::int64_t mtime, std::int64_t ctime,
             std::string_view path);

  /// Appends every row of `table`, numbering them base..base+size.
  Status add_table(const SnapshotTable& table, std::size_t base = 0);

  /// Flushes buffers, writes each file's trailer, and closes. The writer
  /// cannot accept rows afterwards.
  Status finish();

  /// Best-effort cleanup: closes and unlinks every partition file.
  /// Harmless after finish() + consumption; automatic on destruction if
  /// finish() never ran.
  void remove_files();

  /// The finished side (regenerate left null — the owner installs it).
  /// Valid after finish().
  SpilledSide side() const;

  const std::vector<std::string>& files() const { return files_; }

 private:
  Status flush(std::size_t p);

  std::uint32_t bits_ = 0;
  std::vector<std::string> files_;
  std::vector<int> fds_;
  std::vector<std::vector<std::uint8_t>> buffers_;
  std::vector<std::uint64_t> counts_;       // records per partition
  std::vector<std::uint64_t> bytes_;        // payload bytes per partition
  std::vector<std::uint64_t> checksums_;    // running record-hash chains
  std::uint64_t file_rows_ = 0;
  std::uint64_t dir_rows_ = 0;
  bool finished_ = false;
};

/// One decoded partition file, column-major. Row order is the order the
/// records were spilled (ascending snapshot rows).
struct SpillRecords {
  std::vector<std::uint64_t> hashes;
  std::vector<std::uint32_t> rows;
  std::vector<std::uint8_t> dir_flags;
  std::vector<std::int64_t> atimes;
  std::vector<std::int64_t> mtimes;
  std::vector<std::int64_t> ctimes;
  std::vector<std::uint32_t> path_offsets;  // size()+1 entries
  std::string path_bytes;

  std::size_t size() const { return hashes.size(); }
  std::string_view path(std::size_t i) const {
    return std::string_view(path_bytes)
        .substr(path_offsets[i], path_offsets[i + 1] - path_offsets[i]);
  }
  void clear();
};

/// Reads and verifies one partition file. kCorruption on checksum or
/// framing damage, kTruncated when the trailer is cut short — both name
/// the file.
Status read_spill_partition(const std::string& file, SpillRecords* out);

/// Joins two spilled sides partition-pair-at-a-time into the same
/// DiffResult that diff_snapshots(prev, cur, ...) would produce on the
/// resident tables — bit-identical lists, including the prev-row and
/// directory extras when `options` asks for them. Both sides must have
/// been spilled with the same `bits`. A damaged partition is regenerated
/// through its side's hook and re-read once; a second failure (or a null
/// hook) fails the join.
Status spill_diff_join(const SpilledSide& prev, const SpilledSide& cur,
                       const DiffOptions& options, DiffResult* out);

}  // namespace spider
