// PathIndex: an open-addressing hash index from path -> row for one
// snapshot table. This is the build side of the diff join (Fig 13): the
// previous week's snapshot is indexed once, then the current week's rows
// probe it in parallel.
//
// Layout: a power-of-two slot array storing row+1 (0 = empty), linear
// probing. Keys are the table's precomputed 64-bit path hashes; probes
// confirm with a full path comparison, so hash collisions cost a compare
// but never a wrong answer.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "snapshot/table.h"

namespace spider {

class PathIndex {
 public:
  static constexpr std::uint32_t kNotFound = 0xffff'ffffu;

  /// Indexes `table`. With files_only, directories are skipped — the
  /// paper's access-pattern analysis intersects regular files only.
  /// The table must outlive the index and must not contain duplicate paths
  /// (snapshots never do; duplicate insertion keeps the first row).
  explicit PathIndex(const SnapshotTable& table, bool files_only = false);

  /// Row of `path` in the indexed table, or kNotFound. Thread-safe.
  std::uint32_t lookup(std::uint64_t hash, std::string_view path) const;

  std::size_t size() const { return size_; }

 private:
  const SnapshotTable& table_;
  std::vector<std::uint32_t> slots_;  // row + 1; 0 = empty
  std::uint64_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace spider
