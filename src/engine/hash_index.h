// Path -> row hash indexes for the diff join (Fig 13): the previous week's
// snapshot is indexed once, then the current week's rows probe it in
// parallel.
//
// Two shapes:
//
//   PathIndex — one open-addressing table over the whole snapshot (or a
//   caller-provided row subset). Serial build; the original join's build
//   side and still the reference implementation.
//
//   PartitionedPathIndex — the radix-partitioned build side (DESIGN.md
//   §11): file rows are partitioned by the top bits of the path hash
//   (engine/partition.h), then each partition's shard is built by one task
//   with no atomics — the shard's slot range is private to it.
//
// Both store a hash fingerprint inside the 8-byte slot itself, so probe
// misses — the common case when the current week has grown — resolve
// inside one compact slot array without ever touching the previous week's
// hash column or path arena. The adjacent-week probe workload is
// miss-dominated and latency-bound; PathIndex exposes prefetch() so probe
// loops can overlap slot-line misses a few rows ahead, and the
// partitioned index goes further with an L2-resident Bloom pre-filter
// that answers most misses without touching the slot array at all.
//
// Both confirm fingerprint matches with a full path comparison, so hash
// collisions cost a compare but never a wrong answer.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "engine/partition.h"
#include "snapshot/table.h"
#include "util/parallel.h"

namespace spider {

class PathIndex {
 public:
  static constexpr std::uint32_t kNotFound = 0xffff'ffffu;

  /// Indexes `table`. With files_only, directories are skipped — the
  /// paper's access-pattern analysis intersects regular files only.
  /// The table must outlive the index and must not contain duplicate paths
  /// (snapshots never do; duplicate insertion keeps the first row).
  explicit PathIndex(const SnapshotTable& table, bool files_only = false);

  /// Indexes the subset `rows` of `table` (row indices, any order). In
  /// this mode lookup() returns the *position in `rows`* of the match, so
  /// callers can keep side arrays (match flags, gathered payloads) dense
  /// over the subset. `rows` is referenced, not copied — it must outlive
  /// the index.
  PathIndex(const SnapshotTable& table, std::span<const std::uint32_t> rows);

  /// Row of `path` in the indexed table — or, in subset mode, its position
  /// in the subset — or kNotFound. Thread-safe. Defined inline: the diff
  /// probe calls this once per current-week row, and keeping the slot walk
  /// inlined into that loop is worth ~2x on the probe phase.
  std::uint32_t lookup(std::uint64_t hash, std::string_view path) const {
    const std::uint32_t fp = fingerprint_of(hash);
    std::uint64_t slot = hash & mask_;
    for (;;) {
      const std::uint64_t stored = slots_[slot];
      if (static_cast<std::uint32_t>(stored) == 0) return kNotFound;
      if (static_cast<std::uint32_t>(stored >> 32) == fp) {
        const std::uint32_t pos = static_cast<std::uint32_t>(stored) - 1;
        const std::uint32_t row = subset_mode_ ? subset_[pos] : pos;
        if (table_.path(row) == path) return pos;
      }
      slot = (slot + 1) & mask_;
    }
  }

  /// Pulls the slot line a future lookup(hash, ...) will start at into
  /// cache. Probe loops call this a fixed distance ahead.
  void prefetch(std::uint64_t hash) const {
    __builtin_prefetch(slots_.data() + (hash & mask_));
  }

  std::size_t size() const { return size_; }

 private:
  /// Top 32 bits of the hash: disjoint from the low slot-selector bits, so
  /// the in-slot filter adds information instead of echoing them.
  static constexpr std::uint32_t fingerprint_of(std::uint64_t hash) {
    return static_cast<std::uint32_t>(hash >> 32);
  }

  const SnapshotTable& table_;
  std::span<const std::uint32_t> subset_;  // empty span in whole-table mode
  bool subset_mode_ = false;
  // fingerprint << 32 | (position + 1); 0 in the low half = empty. The
  // fingerprint lives inside the slot so non-matching candidates are
  // rejected without a memory access outside this array.
  std::vector<std::uint64_t> slots_;
  std::uint64_t mask_ = 0;
  std::size_t size_ = 0;
};

/// Subset index that, like PartitionedPathIndex below, survives table
/// moves: it owns its row list and stores no table reference, so the study
/// runner can build it once per week and keep it attached to the Snapshot
/// as it moves between pipeline slots. Serial build — it indexes the
/// directory rows for the diff's directory side, a small minority of the
/// snapshot.
class DetachedPathIndex {
 public:
  static constexpr std::uint32_t kNotFound = 0xffff'ffffu;

  DetachedPathIndex() = default;

  /// Indexes the subset `rows` of `table` (row indices, any order;
  /// duplicate paths keep the first position). The table is only read
  /// during the build.
  DetachedPathIndex(const SnapshotTable& table,
                    std::vector<std::uint32_t> rows);

  /// Position in rows() of `path`, or kNotFound. `table` must be the
  /// indexed table (possibly relocated by a move since the build).
  /// Thread-safe.
  std::uint32_t lookup(const SnapshotTable& table, std::uint64_t hash,
                       std::string_view path) const {
    if (slots_.empty()) return kNotFound;
    const std::uint32_t fp = static_cast<std::uint32_t>(hash >> 32);
    std::uint64_t slot = hash & mask_;
    for (;;) {
      const std::uint64_t stored = slots_[slot];
      if (static_cast<std::uint32_t>(stored) == 0) return kNotFound;
      if (static_cast<std::uint32_t>(stored >> 32) == fp) {
        const std::uint32_t pos = static_cast<std::uint32_t>(stored) - 1;
        if (table.path(rows_[pos]) == path) return pos;
      }
      slot = (slot + 1) & mask_;
    }
  }

  /// Indexed rows in insertion order; lookup() returns positions in it.
  std::span<const std::uint32_t> rows() const { return rows_; }
  std::uint32_t row_of(std::uint32_t pos) const { return rows_[pos]; }
  std::size_t size() const { return rows_.size(); }

 private:
  std::vector<std::uint32_t> rows_;
  // Same slot packing as PathIndex: fingerprint << 32 | (position + 1),
  // 0 in the low half = empty.
  std::vector<std::uint64_t> slots_;
  std::uint64_t mask_ = 0;
};

/// Radix-partitioned build side of the diff join. Deliberately does NOT
/// retain a pointer to the indexed table: the study runner moves Snapshot
/// objects between pipeline slots (retain-by-move), which would dangle a
/// stored reference, so lookup() takes the (possibly relocated) table as a
/// parameter. Everything stored inside — row indices and copied
/// timestamps — survives the move.
class PartitionedPathIndex {
 public:
  static constexpr std::uint32_t kNotFound = 0xffff'ffffu;

  /// One 8-byte shard slot: the fingerprint rejects non-matching
  /// candidates in place, the ordinal (position in file_rows()) confirms
  /// and addresses the payload. Kept minimal on purpose: the probe is
  /// miss-dominated, so the slot array — not the payload — must stay
  /// cache-resident.
  struct Slot {
    std::uint32_t fingerprint = 0;
    std::uint32_t ordinal = kNotFound;  // kNotFound = vacant
  };

  /// The three timestamps the Fig 13 classifier compares, gathered at
  /// build time into one dense-by-ordinal array: a probe hit reads one
  /// 24-byte record instead of three scattered timestamp columns of the
  /// previous week's table.
  struct Payload {
    std::int64_t atime = 0;
    std::int64_t ctime = 0;
    std::int64_t mtime = 0;
  };

  /// Indexes the regular-file rows of `table`. Partition count comes from
  /// radix_bits_for(file count); shards build fully in parallel.
  explicit PartitionedPathIndex(const SnapshotTable& table,
                                ThreadPool* pool = nullptr);

  /// Ordinal of `path` (position in file_rows()), or kNotFound. `table`
  /// must be the indexed table (possibly relocated by a move since the
  /// build). Thread-safe. Inline for the same reason as
  /// PathIndex::lookup — the probe loop lives or dies on this staying in
  /// registers.
  std::uint32_t lookup(const SnapshotTable& table, std::uint64_t hash,
                       std::string_view path) const {
    return lookup_lazy(table, hash, [path] { return path; });
  }

  /// lookup with the probe-side path materialized only when a slot
  /// candidate survives the Bloom filter and the fingerprint — the
  /// dominant miss never reads the probe table's path columns at all.
  /// `path_fn` is called zero or more times and must be idempotent.
  template <typename PathFn>
  std::uint32_t lookup_lazy(const SnapshotTable& table, std::uint64_t hash,
                            PathFn&& path_fn) const {
    if (!maybe_contains(hash)) return kNotFound;
    const ShardRef shard =
        shards_[RadixPartitions::partition_of(hash, parts_.bits)];
    const Slot* base = slots_.data() + shard.base;
    const std::uint64_t mask = shard.mask;
    const std::uint32_t fp = fingerprint_of(hash);
    std::uint64_t slot = hash & mask;
    for (;;) {
      const Slot& entry = base[slot];
      if (entry.ordinal == kNotFound) return kNotFound;
      if (entry.fingerprint == fp &&
          table.path(file_rows_[entry.ordinal]) == path_fn()) {
        return entry.ordinal;
      }
      slot = (slot + 1) & mask;
    }
  }

  /// Bloom pre-filter over every indexed path hash: false only when the
  /// hash is definitely absent (no false negatives). The diff probe is
  /// miss-dominated — a growing facility makes most current-week files new
  /// — and the filter is sized ~16 bits per key so it stays L2-resident;
  /// the common miss is answered here without touching the (much larger)
  /// slot array at all. lookup() consults it first, so callers get the
  /// fast path for free.
  bool maybe_contains(std::uint64_t hash) const {
    const std::uint64_t bit = bloom_bit_of(hash);
    return (bloom_[bit >> 6] >> (bit & 63)) & 1u;
  }

  const Payload& payload(std::uint32_t ordinal) const {
    return payloads_[ordinal];
  }

  /// Indexed rows, ascending — the deleted sweep iterates this, and
  /// lookup()'s ordinal indexes into it.
  std::span<const std::uint32_t> file_rows() const { return file_rows_; }
  std::uint32_t row_of(std::uint32_t ordinal) const {
    return file_rows_[ordinal];
  }

  /// Number of indexed (regular-file) rows, duplicates included — equals
  /// the table's file_count().
  std::size_t size() const { return file_rows_.size(); }
  std::uint32_t bits() const { return parts_.bits; }
  std::size_t partition_count() const { return parts_.partition_count(); }

 private:
  /// Bits [16, 48) of the hash: disjoint from both the partition selector
  /// (top bits) and the slot selector (low bits), so the filter adds
  /// information instead of echoing them.
  static constexpr std::uint32_t fingerprint_of(std::uint64_t hash) {
    return static_cast<std::uint32_t>(hash >> 16);
  }

  /// One shard's slice of slots_, packed into 8 bytes so the probe's
  /// partition -> shard hop is a single load from a table that fits in L1.
  struct ShardRef {
    std::uint32_t base = 0;
    std::uint32_t mask = 0;  // capacity - 1 (capacity is a power of two)
  };

  /// The filter is sharded like the slots: the partition selector picks a
  /// word-aligned private region, low hash bits (from bit 8 up) pick the
  /// bit inside it. Overlap with the fingerprint/slot-selector ranges is
  /// fine — the filter only needs no false negatives, not independence —
  /// and the private regions are what lets build_shard set bits with
  /// plain ORs.
  std::uint64_t bloom_bit_of(std::uint64_t hash) const {
    return (static_cast<std::uint64_t>(
                RadixPartitions::partition_of(hash, parts_.bits))
            << bloom_local_bits_) |
           ((hash >> 8) & bloom_local_mask_);
  }

  void build_shard(const SnapshotTable& table, std::size_t p);

  std::vector<std::uint32_t> file_rows_;
  RadixPartitions parts_;  // partitions ordinals (positions in file_rows_)
  std::vector<Slot> slots_;  // all shards, concatenated
  std::vector<Payload> payloads_;  // dense by ordinal
  std::vector<ShardRef> shards_;  // partition -> slots_ slice
  std::vector<std::uint64_t> bloom_;  // one bit per bloom_bit_of() value
  std::uint32_t bloom_local_bits_ = 6;  // bits per partition region (>= 6)
  std::uint64_t bloom_local_mask_ = 63;  // (1 << bloom_local_bits_) - 1
};

}  // namespace spider
