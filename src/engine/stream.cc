#include "engine/stream.h"

#include <condition_variable>
#include <mutex>
#include <utility>

namespace spider {

struct ScolMorselSource::Impl {
  const ScolGroupReader* reader = nullptr;
  Options options;

  SnapshotTable slots[2];
  std::size_t next_group = 0;  // next group to hand out (skip-advanced)
  std::size_t base = 0;        // global row of the next batch's first row
  int next_slot = 0;           // slot the next batch will occupy

  // Depth-1 decode-ahead. The in-flight task decodes `pending_group` into
  // slots[pending_slot]; `done` flips under `mu` when it finishes.
  std::mutex mu;
  std::condition_variable cv;
  bool pending = false;
  bool done = false;
  std::size_t pending_group = 0;
  int pending_slot = 0;
  Status pending_status;

  bool skipped(std::size_t g) const {
    return g < options.skip.size() && options.skip[g] != 0;
  }

  /// First non-skipped group at or after `g`, or group_count() if none.
  std::size_t advance(std::size_t g) const {
    while (g < reader->group_count() && skipped(g)) ++g;
    return g;
  }

  void wait_pending() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return done; });
  }

  void submit_prefetch(std::size_t group, int slot) {
    pending = true;
    done = false;
    pending_group = group;
    pending_slot = slot;
    ThreadPool& pool = options.pool ? *options.pool : ThreadPool::global();
    pool.submit([this, group, slot] {
      slots[slot].clear();
      Status s = reader->decode_group(group, &slots[slot]);
      std::lock_guard<std::mutex> lock(mu);
      pending_status = std::move(s);
      done = true;
      cv.notify_all();
    });
  }
};

ScolMorselSource::ScolMorselSource(const ScolGroupReader* reader,
                                   Options options)
    : impl_(std::make_unique<Impl>()) {
  impl_->reader = reader;
  impl_->options = std::move(options);
  impl_->next_group = impl_->advance(0);
}

ScolMorselSource::~ScolMorselSource() {
  if (impl_ && impl_->pending) impl_->wait_pending();
}

Status ScolMorselSource::next(MorselBatch* batch) {
  Impl& im = *impl_;
  batch->table = nullptr;
  batch->base = 0;
  if (im.next_group >= im.reader->group_count()) {
    if (im.pending) {  // stream ended while a stale prefetch was in flight
      im.wait_pending();
      im.pending = false;
    }
    return Status();
  }

  const std::size_t group = im.next_group;
  const int slot = im.next_slot;
  Status s;
  if (im.pending && im.pending_group == group && im.pending_slot == slot) {
    im.wait_pending();
    im.pending = false;
    s = std::move(im.pending_status);
  } else {
    if (im.pending) {  // prefetch raced a skip-list change; drain it
      im.wait_pending();
      im.pending = false;
    }
    im.slots[slot].clear();
    s = im.reader->decode_group(group, &im.slots[slot]);
  }
  if (!s.ok()) return s;

  im.next_group = im.advance(group + 1);
  im.next_slot = 1 - slot;
  if (im.options.prefetch && im.next_group < im.reader->group_count()) {
    im.submit_prefetch(im.next_group, im.next_slot);
  }

  batch->table = &im.slots[slot];
  batch->base = im.base;
  im.base += im.slots[slot].size();
  return Status();
}

}  // namespace spider
