// Radix partitioning: split n keyed items into 2^bits partitions by the
// TOP bits of a 64-bit hash, with deterministic partition layout. This is
// the building block under the partitioned diff join (DESIGN.md §11) and
// any future sharded group-by: each partition can then be processed by one
// task with no atomics, because every partition's slice of the output is
// private to it.
//
// Determinism contract (mirrors engine/scan.h): the chunk layout of the
// histogram/scatter passes is a pure function of the item count and a
// fixed grain — never the pool width — and within a partition items keep
// ascending input order (the scatter walks chunks in input order and each
// (chunk, partition) cell has a precomputed write cursor). The same input
// therefore produces byte-identical RadixPartitions at any thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "snapshot/table.h"
#include "util/parallel.h"

namespace spider {

/// Items partitioned by the top `bits` of their 64-bit keys. `items` holds
/// the caller's item ids grouped partition-major; `keys` holds each item's
/// key at the same position, so consumers (e.g. the shard build in
/// hash_index.cc) never re-derive hashes. `offsets` has 2^bits + 1 entries
/// delimiting the partitions.
struct RadixPartitions {
  std::uint32_t bits = 0;
  std::vector<std::uint32_t> items;
  std::vector<std::uint64_t> keys;
  std::vector<std::uint32_t> offsets;

  std::size_t partition_count() const { return offsets.empty() ? 0 : offsets.size() - 1; }

  std::span<const std::uint32_t> partition_items(std::size_t p) const {
    return std::span<const std::uint32_t>(items).subspan(
        offsets[p], offsets[p + 1] - offsets[p]);
  }
  std::span<const std::uint64_t> partition_keys(std::size_t p) const {
    return std::span<const std::uint64_t>(keys).subspan(
        offsets[p], offsets[p + 1] - offsets[p]);
  }

  /// Partition of `key`: its top `bits` bits. The top bits — not the low
  /// bits — so the per-shard hash tables in hash_index.cc can keep using
  /// low bits for slot selection without correlation between the two.
  static std::size_t partition_of(std::uint64_t key, std::uint32_t bits) {
    return bits == 0 ? 0 : static_cast<std::size_t>(key >> (64 - bits));
  }
};

/// Partition count heuristic: aim for ~4K items per partition so a
/// partition's hash shard (2x slots) stays cache-resident while one task
/// builds it, clamped to [2, 1024] partitions.
std::uint32_t radix_bits_for(std::size_t n);

/// Fixed grain for the histogram and scatter passes. A constant for the
/// same reason as kScanGrainRows: an adaptive grain would change the chunk
/// layout with the pool width. (Layout here is thread-count-invariant by
/// construction anyway — cursors are precomputed — but a fixed grain keeps
/// the pass trivially auditable.)
inline constexpr std::size_t kRadixGrainRows = 8192;

/// Partitions items [0, n) by the top `bits` of key(i), keeping only items
/// with keep(i). Two parallel passes: per-chunk histograms, then a scatter
/// through precomputed (chunk, partition) cursors — no atomics, and within
/// each partition items stay in ascending input order.
template <typename KeyFn, typename KeepFn>
RadixPartitions radix_partition(std::size_t n, std::uint32_t bits, KeyFn&& key,
                                KeepFn&& keep, ThreadPool* pool = nullptr) {
  RadixPartitions out;
  out.bits = bits;
  const std::size_t parts = std::size_t{1} << bits;
  out.offsets.assign(parts + 1, 0);
  if (n == 0) return out;

  const std::size_t grain = kRadixGrainRows;
  const std::size_t chunks = (n + grain - 1) / grain;

  // Pass 1: per-chunk histogram, chunk-major so each chunk's counters are
  // private (distinct bytes = distinct memory locations; no atomics).
  std::vector<std::uint32_t> hist(chunks * parts, 0);
  parallel_for_chunked(
      n, grain,
      [&](std::size_t begin, std::size_t end) {
        std::uint32_t* counts = hist.data() + (begin / grain) * parts;
        for (std::size_t i = begin; i < end; ++i) {
          if (!keep(i)) continue;
          ++counts[RadixPartitions::partition_of(key(i), bits)];
        }
      },
      pool);

  // Serial partition-major prefix sum: hist cells become write cursors and
  // offsets[] falls out for free. Partition p's slice holds chunk 0's items
  // first, then chunk 1's, ... — ascending input order within the partition.
  std::uint32_t total = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    out.offsets[p] = total;
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::uint32_t count = hist[c * parts + p];
      hist[c * parts + p] = total;
      total += count;
    }
  }
  out.offsets[parts] = total;

  // Pass 2: scatter items and keys through the cursors.
  out.items.resize(total);
  out.keys.resize(total);
  parallel_for_chunked(
      n, grain,
      [&](std::size_t begin, std::size_t end) {
        std::uint32_t* cursors = hist.data() + (begin / grain) * parts;
        for (std::size_t i = begin; i < end; ++i) {
          if (!keep(i)) continue;
          const std::uint64_t k = key(i);
          const std::uint32_t at =
              cursors[RadixPartitions::partition_of(k, bits)]++;
          out.items[at] = static_cast<std::uint32_t>(i);
          out.keys[at] = k;
        }
      },
      pool);
  return out;
}

/// Partitions the regular-file rows of `table` by the top bits of the
/// precomputed path hash — the shape the diff join consumes.
RadixPartitions radix_partition_files(const SnapshotTable& table,
                                      std::uint32_t bits,
                                      ThreadPool* pool = nullptr);

}  // namespace spider
