// Morsel-driven shared scan: one parallel pass over a SnapshotTable feeds
// any number of registered kernels at once — the single-scan/many-
// aggregations shape the paper got from Spark, without materializing
// twelve separate traversals.
//
// The table is split into fixed-size row chunks ("morsels"). Each chunk is
// claimed dynamically by a pool thread, which runs *every* kernel over the
// chunk while its rows are cache-hot, accumulating into a per-kernel,
// per-chunk partial state. After the scan barrier, each kernel folds its
// partial states serially IN CHUNK ORDER (= row order, never completion
// order).
//
// Determinism contract (see DESIGN.md §10):
//   * The chunk layout is a pure function of the row count and the grain —
//     it never depends on the pool width or on scheduling. The same table
//     produces the same chunks whether scanned by 1 thread or 64.
//   * merge() runs on the calling thread, folding states in ascending
//     chunk order. Order-sensitive logic (first-seen tracking, floating-
//     point accumulation) therefore sees an identical fold sequence at
//     every thread count, making results bit-identical to the 1-thread
//     reference.
//   * observe_chunk() calls run concurrently. A kernel may read shared
//     state that no one mutates during the scan (e.g. a membership set
//     frozen since the previous merge) but must write only through its
//     chunk state.
//   * Within one chunk, kernels run in REGISTRATION ORDER on the same
//     thread: kernel k observes chunk c only after kernels 0..k-1 have
//     finished observing c. This is part of the contract — the study
//     runner's fused diff kernel is registered first and publishes its
//     per-chunk classification for sibling kernels to read during the
//     same chunk visit (study/runner.cc).
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "snapshot/table.h"
#include "util/parallel.h"
#include "util/status.h"

namespace spider {

/// Default morsel size. Deliberately a fixed constant rather than the
/// pool-derived automatic grain (resolve_grain): an adaptive grain would
/// change the chunk layout with the thread count and break the bit-identity
/// guarantee above.
inline constexpr std::size_t kScanGrainRows = 8192;

/// One unit of scan work: a GLOBAL row range [begin, end) backed by a
/// table that may hold only a window of the full row space (out-of-core
/// scans stage one .scol row group at a time). `base` is the global row
/// index of the table's local row 0; kernels index the table at
/// `i - base` and record global row numbers, so their outputs are
/// independent of how the scan was staged. Resident scans have base == 0
/// and the two coordinate systems coincide.
struct ScanMorsel {
  const SnapshotTable* table = nullptr;
  std::size_t begin = 0;  // global row range [begin, end)
  std::size_t end = 0;
  std::size_t base = 0;  // global row index of table's local row 0

  /// Local (table) row of a global row inside this morsel.
  std::size_t local(std::size_t global_row) const { return global_row - base; }
};

/// Per-chunk partial state; kernels subclass this with their accumulators.
struct ScanChunkState {
  virtual ~ScanChunkState() = default;
};

/// The chunk states of one kernel, indexed by chunk (ascending row order).
/// Entries may be null when make_chunk_state() returned null.
using ScanStateList = std::span<const std::unique_ptr<ScanChunkState>>;

class ScanKernel {
 public:
  virtual ~ScanKernel() = default;

  /// Fresh partial state for one chunk. Called once per chunk before the
  /// chunk is scanned (serially, in chunk order, on the calling thread).
  /// May return null for kernels with no per-row work.
  virtual std::unique_ptr<ScanChunkState> make_chunk_state() const = 0;

  /// Accumulate the morsel's rows into `state`. Runs concurrently with
  /// other chunks; must only mutate `state` (see determinism contract).
  /// The morsel's table is valid only for the duration of the call —
  /// streaming scans recycle staging tables between batches, so kernels
  /// must not retain the pointer in their chunk state.
  virtual void observe_chunk(ScanChunkState* state, const ScanMorsel& m) = 0;

  /// Fold the per-chunk states, delivered in chunk order. Runs serially on
  /// the calling thread after every observe_chunk has finished; this is
  /// where order-dependent logic belongs. Called even for an empty scan
  /// (with an empty list), so per-scan bookkeeping always runs. There is
  /// deliberately no table parameter: by merge time a streaming scan has
  /// already dropped the staged rows, so anything a merge needs must come
  /// from the chunk states (or context captured at construction).
  ///
  /// `pool` is the scan's pool (null = process-global): order-INsensitive
  /// sub-steps of a merge (e.g. the radix-partitioned count-map merges of
  /// engine/agg.h) may fan back out on it, as long as the order-sensitive
  /// fold itself stays serial and chunk-ordered.
  virtual void merge_chunks(ScanStateList states, ThreadPool* pool) = 0;
};

struct ScanOptions {
  /// Rows per morsel. Must not depend on the pool width if results are to
  /// be reproducible across thread counts.
  std::size_t grain = kScanGrainRows;
  /// Pool to fan out on; null selects the process-global pool.
  ThreadPool* pool = nullptr;
};

/// Runs one shared parallel scan of `table` driving all `kernels`, then
/// merges each kernel's partial states in chunk order (kernels merge in
/// registration order). Blocks until every merge has completed.
void scan_table(const SnapshotTable& table,
                std::span<ScanKernel* const> kernels,
                const ScanOptions& options = {});

/// One batch pulled from a MorselSource: a staging table holding the
/// global rows [base, base + table->size()).
struct MorselBatch {
  const SnapshotTable* table = nullptr;  // null signals end of stream
  std::size_t base = 0;
};

/// Pull seam between the scan dispatcher and whatever stages the rows —
/// a resident table served as one batch, or a streaming .scol reader
/// decoding one row group at a time into recycled staging tables (with
/// its own decode-ahead, see engine/stream.h). next() is called
/// serially; each call invalidates the previous batch's table (the
/// source may recycle it), and batches must arrive in ascending global
/// row order with no overlap.
class MorselSource {
 public:
  virtual ~MorselSource() = default;

  /// Yields the next batch, or ok with batch->table == nullptr at end of
  /// stream. A non-ok status aborts the scan (scan_stream returns it
  /// without merging).
  virtual Status next(MorselBatch* batch) = 0;
};

/// Streaming variant of scan_table: pulls batches from `source`, carves
/// each batch into grain-sized chunks scanned in parallel, and merges
/// every kernel's states in chunk order once the stream ends. Chunk
/// numbering is continuous across batches, so when every batch size is a
/// multiple of the grain (the .scol group size is by construction —
/// except the final short group, which only ever precedes the stream
/// end), the chunk layout — and therefore every merge fold — is
/// IDENTICAL to scan_table over the materialized whole. On a non-ok pull
/// the scan stops and the status is returned; no merges run.
Status scan_stream(MorselSource& source, std::span<ScanKernel* const> kernels,
                   const ScanOptions& options = {});

}  // namespace spider
