// Out-of-core morsel source: feeds a scan one .scol row group at a time.
//
// ScolMorselSource adapts a ScolGroupReader to the MorselSource seam of
// engine/scan.h. Residency is bounded by a two-slot ring of recyclable
// staging tables (SnapshotTable::clear keeps column capacity, so steady
// state does no column reallocation): the slot just handed out is live
// until the next pull, the other hosts the depth-1 decode-ahead of the
// following group. Groups listed in Options::skip (damaged groups a prior
// verification pass already disposed of) are passed over without decoding,
// and the running global row base counts only surviving rows — exactly the
// row numbering the eager salvage path produces by splicing the surviving
// groups together.
#pragma once

#include <cstdint>
#include <vector>

#include "engine/scan.h"
#include "snapshot/scol.h"
#include "util/parallel.h"
#include "util/status.h"

namespace spider {

class ScolMorselSource : public MorselSource {
 public:
  struct Options {
    /// Pool the decode-ahead task is submitted to; null = process-global.
    ThreadPool* pool = nullptr;
    /// Decode group g+1 while the consumer scans group g. Off decodes
    /// synchronously inside next() — same batches, for debugging and
    /// single-thread profiling.
    bool prefetch = true;
    /// Per-group skip flags (non-zero = do not decode; the group
    /// contributes no rows). Empty means every group is streamed. Sized
    /// reader.group_count() otherwise.
    std::vector<std::uint8_t> skip;
  };

  /// `reader` must stay open and outlive the source.
  ScolMorselSource(const ScolGroupReader* reader, Options options);
  ~ScolMorselSource() override;

  ScolMorselSource(const ScolMorselSource&) = delete;
  ScolMorselSource& operator=(const ScolMorselSource&) = delete;

  /// Hands out the next surviving group. A decode failure surfaces here
  /// with the reader's group status (callers running under a salvage
  /// policy are expected to have pre-screened damage into Options::skip).
  Status next(MorselBatch* batch) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace spider
