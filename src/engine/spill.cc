#include "engine/spill.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/hash.h"
#include "util/io.h"

namespace spider {

namespace {

/// Trailer magic: "SPL0001\0" little-endian.
constexpr std::uint64_t kSpillMagic = 0x00313030304c5053ULL;

/// Fixed bytes per record ahead of the path: hash(8) + row(4) + kind(1) +
/// three timestamps(24) + path length(4).
constexpr std::size_t kRecordHeaderBytes = 41;

constexpr std::size_t kTrailerBytes = 32;

/// Per-partition buffer flushed to disk when it crosses this size.
constexpr std::size_t kFlushBytes = 256 * 1024;

constexpr std::uint32_t kMaxBits = 8;

std::size_t partition_of_hash(std::uint64_t hash, std::uint32_t bits) {
  return bits == 0 ? 0 : static_cast<std::size_t>(hash >> (64 - bits));
}

Status errno_status(const char* op, const std::string& file) {
  return Status::io_error(std::string(op) + " " + file + ": " +
                          std::strerror(errno));
}

/// Appends `count` bytes to `fd`, looping over short writes and EINTR.
bool write_all(int fd, const std::uint8_t* data, std::size_t count) {
  while (count > 0) {
    const ssize_t n = ::write(fd, data, count);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    count -= static_cast<std::size_t>(n);
  }
  return true;
}

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, T value) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &value, sizeof(T));
}

template <typename T>
T load_pod(const std::uint8_t* p) {
  T value;
  std::memcpy(&value, p, sizeof(T));
  return value;
}

/// One record's contribution to the partition checksum: the chain folds
/// the hash of each record's serialized bytes in append order, so the
/// value is independent of how the writer chunked its flushes and the
/// reader can recompute it record-by-record.
std::uint64_t chain_checksum(std::uint64_t chain, const std::uint8_t* record,
                             std::size_t bytes) {
  return hash_combine(
      chain, hash_bytes(std::string_view(
                 reinterpret_cast<const char*>(record), bytes)));
}

Status corrupt(const std::string& file, const char* what) {
  return Status::corruption("spill partition " + file + ": " + what);
}

}  // namespace

std::uint32_t spill_bits_for(std::uint64_t rows, std::size_t bytes_per_row,
                             std::size_t partition_budget) {
  if (partition_budget == 0) return 0;
  const std::uint64_t total = rows * bytes_per_row;
  const std::uint64_t parts =
      (total + partition_budget - 1) / partition_budget;
  std::uint32_t bits = 0;
  while ((1ULL << bits) < parts && bits < kMaxBits) ++bits;
  return bits;
}

SpillPartitionWriter::~SpillPartitionWriter() {
  // A writer destroyed before finish() was abandoned mid-spill; its files
  // are incomplete and must not be left for a reader to trip over. A
  // finished writer leaves its files alone — the SpilledSide owns them.
  if (!finished_) remove_files();
}

Status SpillPartitionWriter::open(const Options& options) {
  if (!files_.empty() || finished_) {
    return Status::failed_precondition("spill writer already opened");
  }
  if (options.bits > kMaxBits) {
    return Status::invalid_argument("spill fan-out above " +
                                    std::to_string(kMaxBits) + " bits");
  }
  bits_ = options.bits;
  const std::size_t parts = std::size_t{1} << bits_;
  files_.reserve(parts);
  fds_.assign(parts, -1);
  buffers_.assign(parts, {});
  counts_.assign(parts, 0);
  bytes_.assign(parts, 0);
  checksums_.assign(parts, 0);
  for (std::size_t p = 0; p < parts; ++p) {
    std::string name = options.dir + "/" + options.stem + "-p" +
                       std::to_string(p) + ".spill";
    int fd = -1;
    do {
      fd = ::open(name.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC,
                  0644);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) {
      const Status s = errno_status("open", name);
      files_.push_back(std::move(name));
      remove_files();
      return s;
    }
    files_.push_back(std::move(name));
    fds_[p] = fd;
  }
  return Status();
}

Status SpillPartitionWriter::flush(std::size_t p) {
  std::vector<std::uint8_t>& buffer = buffers_[p];
  if (buffer.empty()) return Status();
  if (!write_all(fds_[p], buffer.data(), buffer.size())) {
    return errno_status("write", files_[p]);
  }
  buffer.clear();
  return Status();
}

Status SpillPartitionWriter::add(std::uint64_t path_hash, std::uint32_t row,
                                 bool is_dir, std::int64_t atime,
                                 std::int64_t mtime, std::int64_t ctime,
                                 std::string_view path) {
  if (finished_ || files_.empty()) {
    return Status::failed_precondition("spill writer not open");
  }
  const std::size_t p = partition_of_hash(path_hash, bits_);
  std::vector<std::uint8_t>& buffer = buffers_[p];
  const std::size_t at = buffer.size();
  append_pod(buffer, path_hash);
  append_pod(buffer, row);
  append_pod(buffer, static_cast<std::uint8_t>(is_dir ? 1 : 0));
  append_pod(buffer, atime);
  append_pod(buffer, mtime);
  append_pod(buffer, ctime);
  append_pod(buffer, static_cast<std::uint32_t>(path.size()));
  buffer.insert(buffer.end(), path.begin(), path.end());
  const std::size_t record_bytes = buffer.size() - at;
  checksums_[p] =
      chain_checksum(checksums_[p], buffer.data() + at, record_bytes);
  ++counts_[p];
  bytes_[p] += record_bytes;
  if (is_dir) {
    ++dir_rows_;
  } else {
    ++file_rows_;
  }
  if (buffer.size() >= kFlushBytes) return flush(p);
  return Status();
}

Status SpillPartitionWriter::add_table(const SnapshotTable& table,
                                       std::size_t base) {
  for (std::size_t i = 0; i < table.size(); ++i) {
    const Status s =
        add(table.path_hash(i), static_cast<std::uint32_t>(base + i),
            table.is_dir(i), table.atime(i), table.mtime(i), table.ctime(i),
            table.path(i));
    if (!s.ok()) return s;
  }
  return Status();
}

Status SpillPartitionWriter::finish() {
  if (finished_ || files_.empty()) {
    return Status::failed_precondition("spill writer not open");
  }
  for (std::size_t p = 0; p < files_.size(); ++p) {
    Status s = flush(p);
    if (!s.ok()) return s;
    std::vector<std::uint8_t> trailer;
    trailer.reserve(kTrailerBytes);
    append_pod(trailer, kSpillMagic);
    append_pod(trailer, counts_[p]);
    append_pod(trailer, bytes_[p]);
    append_pod(trailer, checksums_[p]);
    if (!write_all(fds_[p], trailer.data(), trailer.size())) {
      return errno_status("write", files_[p]);
    }
    ::close(fds_[p]);
    fds_[p] = -1;
  }
  finished_ = true;
  return Status();
}

void SpillPartitionWriter::remove_files() {
  for (std::size_t p = 0; p < files_.size(); ++p) {
    if (p < fds_.size() && fds_[p] >= 0) {
      ::close(fds_[p]);
      fds_[p] = -1;
    }
    ::unlink(files_[p].c_str());
  }
}

SpilledSide SpillPartitionWriter::side() const {
  SpilledSide side;
  side.bits = bits_;
  side.files = files_;
  side.file_rows = file_rows_;
  side.dir_rows = dir_rows_;
  return side;
}

void SpillRecords::clear() {
  hashes.clear();
  rows.clear();
  dir_flags.clear();
  atimes.clear();
  mtimes.clear();
  ctimes.clear();
  path_offsets.clear();
  path_bytes.clear();
}

Status read_spill_partition(const std::string& file, SpillRecords* out) {
  out->clear();
  std::vector<std::uint8_t> bytes;
  Status s = read_file(file, &bytes);
  if (!s.ok()) return s;
  if (bytes.size() < kTrailerBytes) {
    return Status::truncated("spill partition " + file +
                             ": shorter than its trailer");
  }
  const std::uint8_t* trailer = bytes.data() + bytes.size() - kTrailerBytes;
  if (load_pod<std::uint64_t>(trailer) != kSpillMagic) {
    return corrupt(file, "bad trailer magic");
  }
  const std::uint64_t count = load_pod<std::uint64_t>(trailer + 8);
  const std::uint64_t payload = load_pod<std::uint64_t>(trailer + 16);
  const std::uint64_t checksum = load_pod<std::uint64_t>(trailer + 24);
  if (payload != bytes.size() - kTrailerBytes) {
    return corrupt(file, "payload size disagrees with trailer");
  }

  out->hashes.reserve(count);
  out->rows.reserve(count);
  out->dir_flags.reserve(count);
  out->atimes.reserve(count);
  out->mtimes.reserve(count);
  out->ctimes.reserve(count);
  out->path_offsets.reserve(count + 1);
  out->path_offsets.push_back(0);

  const std::uint8_t* p = bytes.data();
  std::uint64_t remaining = payload;
  std::uint64_t chain = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    if (remaining < kRecordHeaderBytes) {
      return corrupt(file, "record header runs past the payload");
    }
    const std::uint32_t len = load_pod<std::uint32_t>(p + 37);
    const std::uint64_t record_bytes = kRecordHeaderBytes + len;
    if (remaining < record_bytes) {
      return corrupt(file, "record path runs past the payload");
    }
    chain = chain_checksum(chain, p, record_bytes);
    out->hashes.push_back(load_pod<std::uint64_t>(p));
    out->rows.push_back(load_pod<std::uint32_t>(p + 8));
    out->dir_flags.push_back(load_pod<std::uint8_t>(p + 12));
    out->atimes.push_back(load_pod<std::int64_t>(p + 13));
    out->mtimes.push_back(load_pod<std::int64_t>(p + 21));
    out->ctimes.push_back(load_pod<std::int64_t>(p + 29));
    out->path_bytes.append(reinterpret_cast<const char*>(p) +
                               kRecordHeaderBytes,
                           len);
    out->path_offsets.push_back(
        static_cast<std::uint32_t>(out->path_bytes.size()));
    p += record_bytes;
    remaining -= record_bytes;
  }
  if (remaining != 0) {
    return corrupt(file, "payload bytes left over after the last record");
  }
  if (chain != checksum) return corrupt(file, "checksum mismatch");
  return Status();
}

namespace {

/// Loads one partition, retrying once through the side's regenerate hook
/// when the file fails verification — the owning side can always re-derive
/// a scratch partition from its original data.
Status load_partition(const SpilledSide& side, std::size_t p,
                      SpillRecords* out) {
  Status s = read_spill_partition(side.files[p], out);
  if (s.ok() || !side.regenerate) return s;
  const Status regen = side.regenerate(p);
  if (!regen.ok()) return regen;
  return read_spill_partition(side.files[p], out);
}

/// Indices of `records` with (non-)directory kind, sorted by
/// (hash, path, row) — the row tie-break cannot fire on real snapshots
/// (paths are unique) but pins the order if it ever does.
std::vector<std::uint32_t> sorted_kind(const SpillRecords& records,
                                       bool dirs) {
  std::vector<std::uint32_t> order;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if ((records.dir_flags[i] != 0) == dirs) {
      order.push_back(static_cast<std::uint32_t>(i));
    }
  }
  std::sort(order.begin(), order.end(),
            [&records](std::uint32_t a, std::uint32_t b) {
              if (records.hashes[a] != records.hashes[b]) {
                return records.hashes[a] < records.hashes[b];
              }
              if (records.path(a) != records.path(b)) {
                return records.path(a) < records.path(b);
              }
              return records.rows[a] < records.rows[b];
            });
  return order;
}

/// Same matched-row classification as engine/diff.cc's classify_pair, on
/// spilled timestamps.
void classify_records(const SpillRecords& prev, const SpillRecords& cur,
                      std::uint32_t pi, std::uint32_t ci, bool record_prev,
                      DiffResult& result) {
  const bool atime_same = cur.atimes[ci] == prev.atimes[pi];
  const bool mtime_same = cur.mtimes[ci] == prev.mtimes[pi];
  const bool ctime_same = cur.ctimes[ci] == prev.ctimes[pi];
  if (mtime_same && ctime_same && atime_same) {
    result.untouched_rows.push_back(cur.rows[ci]);
    if (record_prev) result.untouched_prev_rows.push_back(prev.rows[pi]);
  } else if (mtime_same && ctime_same) {
    result.readonly_rows.push_back(cur.rows[ci]);
    if (record_prev) result.readonly_prev_rows.push_back(prev.rows[pi]);
  } else {
    result.updated_rows.push_back(cur.rows[ci]);
    if (record_prev) result.updated_prev_rows.push_back(prev.rows[pi]);
  }
}

/// Matched directory twins join the changed lists only when a timestamp
/// moved, mirroring diff.cc's classify_dir.
void classify_dir_records(const SpillRecords& prev, const SpillRecords& cur,
                          std::uint32_t pi, std::uint32_t ci,
                          DiffResult& result) {
  if (cur.atimes[ci] != prev.atimes[pi] ||
      cur.mtimes[ci] != prev.mtimes[pi] ||
      cur.ctimes[ci] != prev.ctimes[pi]) {
    result.changed_dir_rows.push_back(cur.rows[ci]);
    result.changed_dir_prev_rows.push_back(prev.rows[pi]);
  }
}

/// The sortmerge walk of diff_snapshots_sortmerge over one partition's
/// records of one kind. The four per-class closures let the file and
/// directory walks share the loop.
template <typename OnDeleted, typename OnNew, typename OnMatched>
void merge_walk(const SpillRecords& prev, const SpillRecords& cur,
                const std::vector<std::uint32_t>& lhs,
                const std::vector<std::uint32_t>& rhs, OnDeleted on_deleted,
                OnNew on_new, OnMatched on_matched) {
  auto key_less = [&](std::uint32_t a, std::uint32_t b) {
    if (prev.hashes[a] != cur.hashes[b]) {
      return prev.hashes[a] < cur.hashes[b];
    }
    return prev.path(a) < cur.path(b);
  };
  std::size_t i = 0, j = 0;
  while (i < lhs.size() && j < rhs.size()) {
    const std::uint32_t a = lhs[i];
    const std::uint32_t b = rhs[j];
    if (key_less(a, b)) {
      on_deleted(a);
      ++i;
    } else if (prev.hashes[a] == cur.hashes[b] &&
               prev.path(a) == cur.path(b)) {
      on_matched(a, b);
      ++i;
      ++j;
    } else {
      on_new(b);
      ++j;
    }
  }
  for (; i < lhs.size(); ++i) on_deleted(lhs[i]);
  for (; j < rhs.size(); ++j) on_new(rhs[j]);
}

/// Restores the hash join's ascending-cur-row contract for a matched
/// class, keeping the prev list index-parallel (diff.cc's co_sort_by_cur).
void co_sort_by_cur(std::vector<std::uint32_t>& cur_rows,
                    std::vector<std::uint32_t>& prev_rows) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(cur_rows.size());
  for (std::size_t i = 0; i < cur_rows.size(); ++i) {
    pairs.emplace_back(cur_rows[i], prev_rows[i]);
  }
  std::sort(pairs.begin(), pairs.end());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    cur_rows[i] = pairs[i].first;
    prev_rows[i] = pairs[i].second;
  }
}

}  // namespace

Status spill_diff_join(const SpilledSide& prev, const SpilledSide& cur,
                       const DiffOptions& options, DiffResult* out) {
  if (prev.bits != cur.bits || prev.files.size() != cur.files.size()) {
    return Status::invalid_argument(
        "spill join requires both sides partitioned alike");
  }
  *out = DiffResult{};
  out->prev_files = static_cast<std::size_t>(prev.file_rows);
  out->cur_files = static_cast<std::size_t>(cur.file_rows);
  out->has_prev_rows = options.prev_rows;
  out->has_dir_diff = options.dirs;

  SpillRecords prev_records, cur_records;
  for (std::size_t p = 0; p < prev.files.size(); ++p) {
    Status s = load_partition(prev, p, &prev_records);
    if (!s.ok()) return s;
    s = load_partition(cur, p, &cur_records);
    if (!s.ok()) return s;

    merge_walk(
        prev_records, cur_records, sorted_kind(prev_records, /*dirs=*/false),
        sorted_kind(cur_records, /*dirs=*/false),
        [&](std::uint32_t a) {
          out->deleted_rows.push_back(prev_records.rows[a]);
        },
        [&](std::uint32_t b) { out->new_rows.push_back(cur_records.rows[b]); },
        [&](std::uint32_t a, std::uint32_t b) {
          classify_records(prev_records, cur_records, a, b,
                           options.prev_rows, *out);
        });
    if (options.dirs) {
      merge_walk(
          prev_records, cur_records, sorted_kind(prev_records, /*dirs=*/true),
          sorted_kind(cur_records, /*dirs=*/true),
          [&](std::uint32_t a) {
            out->deleted_dir_rows.push_back(prev_records.rows[a]);
          },
          [&](std::uint32_t b) {
            out->new_dir_rows.push_back(cur_records.rows[b]);
          },
          [&](std::uint32_t a, std::uint32_t b) {
            classify_dir_records(prev_records, cur_records, a, b, *out);
          });
    }
  }

  // Restore the hash join's row-order contract, exactly as the sortmerge
  // strategy does after its own walk.
  std::sort(out->new_rows.begin(), out->new_rows.end());
  std::sort(out->deleted_rows.begin(), out->deleted_rows.end());
  if (options.prev_rows) {
    co_sort_by_cur(out->readonly_rows, out->readonly_prev_rows);
    co_sort_by_cur(out->updated_rows, out->updated_prev_rows);
    co_sort_by_cur(out->untouched_rows, out->untouched_prev_rows);
  } else {
    for (auto* rows :
         {&out->readonly_rows, &out->updated_rows, &out->untouched_rows}) {
      std::sort(rows->begin(), rows->end());
    }
  }
  if (options.dirs) {
    std::sort(out->new_dir_rows.begin(), out->new_dir_rows.end());
    std::sort(out->deleted_dir_rows.begin(), out->deleted_dir_rows.end());
    co_sort_by_cur(out->changed_dir_rows, out->changed_dir_prev_rows);
  }
  return Status();
}

}  // namespace spider
