#include "engine/diff.h"

#include <algorithm>
#include <chrono>
#include <memory>

namespace spider {

namespace {

double fraction(std::size_t part, std::size_t whole) {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

/// Probe/sweep chunk size. Fixed for the same reason as kScanGrainRows:
/// the chunk layout (and with it the partial-splice order) must never
/// depend on the pool width.
constexpr std::size_t kDiffGrain = 8192;

/// How many rows ahead the hash strategy's probe loop issues the
/// slot-line prefetch. The probe is a chain of independent random
/// lookups, so overlapping ~16 in-flight misses hides most of the
/// latency; the value is uncritical (8..32 measure alike) and does not
/// affect results. (The partitioned probe does not prefetch — its Bloom
/// pre-filter answers most misses from L2.)
constexpr std::size_t kProbePrefetchDistance = 16;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

void classify_row(std::uint32_t row, bool atime_same, bool mtime_same,
                  bool ctime_same, DiffChunkRows& out) {
  if (mtime_same && ctime_same && atime_same) {
    out.rows[DiffChunkRows::kUntouched].push_back(row);
  } else if (mtime_same && ctime_same) {
    out.rows[DiffChunkRows::kReadonly].push_back(row);
  } else {
    out.rows[DiffChunkRows::kUpdated].push_back(row);
  }
}

/// Ascending regular-file rows of `table`, gathered serially (the build
/// side of the hash strategy; the partitioned index gathers its own copy
/// in parallel).
std::vector<std::uint32_t> file_rows_of(const SnapshotTable& table) {
  std::vector<std::uint32_t> rows;
  rows.reserve(table.file_count());
  for (std::size_t row = 0; row < table.size(); ++row) {
    if (!table.is_dir(row)) rows.push_back(static_cast<std::uint32_t>(row));
  }
  return rows;
}

/// Zeroed match flags, one per build-side file (never per row — the
/// directory rows of the previous week get no slots).
std::unique_ptr<std::atomic<std::uint8_t>[]> make_matched(std::size_t files) {
  if (files == 0) return nullptr;
  // Value-initialization zeroes the atomics (C++20).
  return std::unique_ptr<std::atomic<std::uint8_t>[]>(
      new std::atomic<std::uint8_t>[files]());
}

}  // namespace

double DiffResult::deleted_fraction() const {
  return fraction(deleted_rows.size(), prev_files);
}
double DiffResult::readonly_fraction() const {
  return fraction(readonly_rows.size(), prev_files);
}
double DiffResult::updated_fraction() const {
  return fraction(updated_rows.size(), prev_files);
}
double DiffResult::untouched_fraction() const {
  return fraction(untouched_rows.size(), prev_files);
}
double DiffResult::new_fraction() const {
  return fraction(new_rows.size(), cur_files);
}

void diff_probe_range(const PartitionedPathIndex& index,
                      const SnapshotTable& prev, const SnapshotTable& cur,
                      std::size_t begin, std::size_t end,
                      std::atomic<std::uint8_t>* matched, DiffChunkRows* out) {
  // No prefetch-ahead here: the index's Bloom pre-filter answers the
  // dominant miss case from L2, so most rows never touch a slot line (and,
  // via lookup_lazy, never materialize the probe-side path either).
  for (std::size_t row = begin; row < end; ++row) {
    if (cur.is_dir(row)) continue;
    const std::uint32_t ordinal = index.lookup_lazy(
        prev, cur.path_hash(row), [&cur, row] { return cur.path(row); });
    if (ordinal == PartitionedPathIndex::kNotFound) {
      out->rows[DiffChunkRows::kNew].push_back(
          static_cast<std::uint32_t>(row));
      continue;
    }
    matched[ordinal].store(1, std::memory_order_relaxed);
    const PartitionedPathIndex::Payload& payload = index.payload(ordinal);
    classify_row(static_cast<std::uint32_t>(row),
                 cur.atime(row) == payload.atime,
                 cur.mtime(row) == payload.mtime,
                 cur.ctime(row) == payload.ctime, *out);
  }
}

void diff_finalize(std::span<const std::uint32_t> prev_file_rows,
                   const std::atomic<std::uint8_t>* matched,
                   std::span<const DiffChunkRows* const> chunks,
                   ThreadPool* pool, DiffResult* out) {
  std::size_t totals[4] = {0, 0, 0, 0};
  for (const DiffChunkRows* chunk : chunks) {
    for (int k = 0; k < 4; ++k) totals[k] += chunk->rows[k].size();
  }
  out->new_rows.reserve(totals[DiffChunkRows::kNew]);
  out->readonly_rows.reserve(totals[DiffChunkRows::kReadonly]);
  out->updated_rows.reserve(totals[DiffChunkRows::kUpdated]);
  out->untouched_rows.reserve(totals[DiffChunkRows::kUntouched]);
  for (const DiffChunkRows* chunk : chunks) {
    out->new_rows.insert(out->new_rows.end(),
                         chunk->rows[DiffChunkRows::kNew].begin(),
                         chunk->rows[DiffChunkRows::kNew].end());
    out->readonly_rows.insert(out->readonly_rows.end(),
                              chunk->rows[DiffChunkRows::kReadonly].begin(),
                              chunk->rows[DiffChunkRows::kReadonly].end());
    out->updated_rows.insert(out->updated_rows.end(),
                             chunk->rows[DiffChunkRows::kUpdated].begin(),
                             chunk->rows[DiffChunkRows::kUpdated].end());
    out->untouched_rows.insert(out->untouched_rows.end(),
                               chunk->rows[DiffChunkRows::kUntouched].begin(),
                               chunk->rows[DiffChunkRows::kUntouched].end());
  }

  // Deleted sweep: everything never matched. The match counts are already
  // known, so the result is sized exactly before the sweep.
  const std::size_t matched_total = totals[DiffChunkRows::kReadonly] +
                                    totals[DiffChunkRows::kUpdated] +
                                    totals[DiffChunkRows::kUntouched];
  out->deleted_rows.reserve(prev_file_rows.size() - matched_total);
  const std::size_t n = prev_file_rows.size();
  const std::size_t sweep_chunks = n == 0 ? 0 : (n + kDiffGrain - 1) / kDiffGrain;
  std::vector<std::vector<std::uint32_t>> partials(sweep_chunks);
  parallel_for_chunked(
      n, kDiffGrain,
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::uint32_t>& deleted = partials[begin / kDiffGrain];
        for (std::size_t pos = begin; pos < end; ++pos) {
          if (matched[pos].load(std::memory_order_relaxed) == 0) {
            deleted.push_back(prev_file_rows[pos]);
          }
        }
      },
      pool);
  for (const std::vector<std::uint32_t>& deleted : partials) {
    out->deleted_rows.insert(out->deleted_rows.end(), deleted.begin(),
                             deleted.end());
  }
}

DiffResult diff_snapshots(const SnapshotTable& prev, const SnapshotTable& cur,
                          ThreadPool* pool, DiffBreakdown* breakdown) {
  DiffResult result;
  result.prev_files = prev.file_count();
  result.cur_files = cur.file_count();

  auto mark = std::chrono::steady_clock::now();
  // Index the previous week's files via the subset constructor: lookups
  // return positions in file_rows, so the match flags and the deleted
  // sweep stay dense over files (directory rows get no slots).
  const std::vector<std::uint32_t> file_rows = file_rows_of(prev);
  const PathIndex index(prev, file_rows);
  auto matched = make_matched(file_rows.size());
  if (breakdown) {
    breakdown->build_s = seconds_since(mark);
    mark = std::chrono::steady_clock::now();
  }

  // Per-chunk classification buffers, merged in chunk order so the final
  // row vectors are ascending regardless of scheduling.
  const std::size_t n = cur.size();
  const std::size_t chunks = n == 0 ? 0 : (n + kDiffGrain - 1) / kDiffGrain;
  std::vector<DiffChunkRows> partials(chunks);
  parallel_for_chunked(
      n, kDiffGrain,
      [&](std::size_t begin, std::size_t end) {
        DiffChunkRows& out = partials[begin / kDiffGrain];
        for (std::size_t row = begin; row < end; ++row) {
          const std::size_t ahead = row + kProbePrefetchDistance;
          if (ahead < end && !cur.is_dir(ahead)) {
            index.prefetch(cur.path_hash(ahead));
          }
          if (cur.is_dir(row)) continue;
          const std::uint32_t pos =
              index.lookup(cur.path_hash(row), cur.path(row));
          if (pos == PathIndex::kNotFound) {
            out.rows[DiffChunkRows::kNew].push_back(
                static_cast<std::uint32_t>(row));
            continue;
          }
          matched[pos].store(1, std::memory_order_relaxed);
          const std::uint32_t prev_row = file_rows[pos];
          classify_row(static_cast<std::uint32_t>(row),
                       cur.atime(row) == prev.atime(prev_row),
                       cur.mtime(row) == prev.mtime(prev_row),
                       cur.ctime(row) == prev.ctime(prev_row), out);
        }
      },
      pool);
  if (breakdown) {
    breakdown->probe_s = seconds_since(mark);
    mark = std::chrono::steady_clock::now();
  }

  std::vector<const DiffChunkRows*> chunk_ptrs;
  chunk_ptrs.reserve(partials.size());
  for (const DiffChunkRows& partial : partials) chunk_ptrs.push_back(&partial);
  diff_finalize(file_rows, matched.get(), chunk_ptrs, pool, &result);
  if (breakdown) breakdown->sweep_s = seconds_since(mark);
  return result;
}

DiffResult diff_snapshots_partitioned(const SnapshotTable& prev,
                                      const SnapshotTable& cur,
                                      ThreadPool* pool,
                                      DiffBreakdown* breakdown) {
  DiffResult result;
  result.prev_files = prev.file_count();
  result.cur_files = cur.file_count();

  auto mark = std::chrono::steady_clock::now();
  const PartitionedPathIndex index(prev, pool);
  auto matched = make_matched(index.size());
  if (breakdown) {
    breakdown->build_s = seconds_since(mark);
    mark = std::chrono::steady_clock::now();
  }

  const std::size_t n = cur.size();
  const std::size_t chunks = n == 0 ? 0 : (n + kDiffGrain - 1) / kDiffGrain;
  std::vector<DiffChunkRows> partials(chunks);
  parallel_for_chunked(
      n, kDiffGrain,
      [&](std::size_t begin, std::size_t end) {
        diff_probe_range(index, prev, cur, begin, end, matched.get(),
                         &partials[begin / kDiffGrain]);
      },
      pool);
  if (breakdown) {
    breakdown->probe_s = seconds_since(mark);
    mark = std::chrono::steady_clock::now();
  }

  std::vector<const DiffChunkRows*> chunk_ptrs;
  chunk_ptrs.reserve(partials.size());
  for (const DiffChunkRows& partial : partials) chunk_ptrs.push_back(&partial);
  diff_finalize(index.file_rows(), matched.get(), chunk_ptrs, pool, &result);
  if (breakdown) breakdown->sweep_s = seconds_since(mark);
  return result;
}

namespace {

/// Rows of one table's regular files, sorted by (path hash, row).
std::vector<std::uint32_t> sorted_file_rows(const SnapshotTable& table) {
  std::vector<std::uint32_t> rows = file_rows_of(table);
  std::sort(rows.begin(), rows.end(),
            [&table](std::uint32_t a, std::uint32_t b) {
              if (table.path_hash(a) != table.path_hash(b)) {
                return table.path_hash(a) < table.path_hash(b);
              }
              return table.path(a) < table.path(b);
            });
  return rows;
}

void classify_pair(const SnapshotTable& prev, const SnapshotTable& cur,
                   std::uint32_t prev_row, std::uint32_t cur_row,
                   DiffResult& result) {
  const bool atime_same = cur.atime(cur_row) == prev.atime(prev_row);
  const bool mtime_same = cur.mtime(cur_row) == prev.mtime(prev_row);
  const bool ctime_same = cur.ctime(cur_row) == prev.ctime(prev_row);
  if (mtime_same && ctime_same && atime_same) {
    result.untouched_rows.push_back(cur_row);
  } else if (mtime_same && ctime_same) {
    result.readonly_rows.push_back(cur_row);
  } else {
    result.updated_rows.push_back(cur_row);
  }
}

}  // namespace

DiffResult diff_snapshots_sortmerge(const SnapshotTable& prev,
                                    const SnapshotTable& cur,
                                    DiffBreakdown* breakdown) {
  DiffResult result;
  result.prev_files = prev.file_count();
  result.cur_files = cur.file_count();

  auto mark = std::chrono::steady_clock::now();
  const std::vector<std::uint32_t> lhs = sorted_file_rows(prev);
  const std::vector<std::uint32_t> rhs = sorted_file_rows(cur);
  if (breakdown) {
    breakdown->build_s = seconds_since(mark);
    mark = std::chrono::steady_clock::now();
  }

  std::size_t i = 0, j = 0;
  auto key_less = [&](std::uint32_t a, std::uint32_t b) {
    if (prev.path_hash(a) != cur.path_hash(b)) {
      return prev.path_hash(a) < cur.path_hash(b);
    }
    return prev.path(a) < cur.path(b);
  };
  while (i < lhs.size() && j < rhs.size()) {
    const std::uint32_t a = lhs[i];
    const std::uint32_t b = rhs[j];
    if (key_less(a, b)) {
      result.deleted_rows.push_back(a);
      ++i;
    } else if (prev.path_hash(a) == cur.path_hash(b) &&
               prev.path(a) == cur.path(b)) {
      classify_pair(prev, cur, a, b, result);
      ++i;
      ++j;
    } else {
      result.new_rows.push_back(b);
      ++j;
    }
  }
  for (; i < lhs.size(); ++i) result.deleted_rows.push_back(lhs[i]);
  for (; j < rhs.size(); ++j) result.new_rows.push_back(rhs[j]);
  if (breakdown) {
    breakdown->probe_s = seconds_since(mark);
    mark = std::chrono::steady_clock::now();
  }

  // Restore the hash join's row-order contract.
  for (auto* rows : {&result.new_rows, &result.readonly_rows,
                     &result.updated_rows, &result.untouched_rows,
                     &result.deleted_rows}) {
    std::sort(rows->begin(), rows->end());
  }
  if (breakdown) breakdown->sweep_s = seconds_since(mark);
  return result;
}

DiffResult diff_snapshots_with(DiffStrategy strategy,
                               const SnapshotTable& prev,
                               const SnapshotTable& cur, ThreadPool* pool,
                               DiffBreakdown* breakdown) {
  switch (strategy) {
    case DiffStrategy::kSortMerge:
      return diff_snapshots_sortmerge(prev, cur, breakdown);
    case DiffStrategy::kPartitioned:
      return diff_snapshots_partitioned(prev, cur, pool, breakdown);
    case DiffStrategy::kHash:
      break;
  }
  return diff_snapshots(prev, cur, pool, breakdown);
}

}  // namespace spider
