#include "engine/diff.h"

#include <algorithm>
#include <chrono>
#include <memory>

namespace spider {

namespace {

double fraction(std::size_t part, std::size_t whole) {
  return whole == 0 ? 0.0
                    : static_cast<double>(part) / static_cast<double>(whole);
}

/// Probe/sweep chunk size. Fixed for the same reason as kScanGrainRows:
/// the chunk layout (and with it the partial-splice order) must never
/// depend on the pool width.
constexpr std::size_t kDiffGrain = 8192;

/// How many rows ahead the hash strategy's probe loop issues the
/// slot-line prefetch. The probe is a chain of independent random
/// lookups, so overlapping ~16 in-flight misses hides most of the
/// latency; the value is uncritical (8..32 measure alike) and does not
/// affect results. (The partitioned probe does not prefetch — its Bloom
/// pre-filter answers most misses from L2.)
constexpr std::size_t kProbePrefetchDistance = 16;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

int classify(bool atime_same, bool mtime_same, bool ctime_same) {
  if (mtime_same && ctime_same) {
    return atime_same ? DiffChunkRows::kUntouched : DiffChunkRows::kReadonly;
  }
  return DiffChunkRows::kUpdated;
}

/// Classifies one matched directory row against its previous-week twin:
/// appended to the changed lists when any timestamp differs, dropped
/// (still counted as matched by the caller) otherwise.
void classify_dir(const SnapshotTable& prev, const SnapshotTable& cur,
                  std::uint32_t prev_row, std::uint32_t cur_row,
                  std::vector<std::uint32_t>& changed,
                  std::vector<std::uint32_t>& changed_prev) {
  if (cur.atime(cur_row) != prev.atime(prev_row) ||
      cur.mtime(cur_row) != prev.mtime(prev_row) ||
      cur.ctime(cur_row) != prev.ctime(prev_row)) {
    changed.push_back(cur_row);
    changed_prev.push_back(prev_row);
  }
}

/// Ascending regular-file rows of `table`, gathered serially (the build
/// side of the hash strategy; the partitioned index gathers its own copy
/// in parallel).
std::vector<std::uint32_t> file_rows_of(const SnapshotTable& table) {
  std::vector<std::uint32_t> rows;
  rows.reserve(table.file_count());
  for (std::size_t row = 0; row < table.size(); ++row) {
    if (!table.is_dir(row)) rows.push_back(static_cast<std::uint32_t>(row));
  }
  return rows;
}

/// Zeroed match flags, one per build-side file (never per row — the
/// directory rows of the previous week get no slots).
std::unique_ptr<std::atomic<std::uint8_t>[]> make_matched(std::size_t files) {
  if (files == 0) return nullptr;
  // Value-initialization zeroes the atomics (C++20).
  return std::unique_ptr<std::atomic<std::uint8_t>[]>(
      new std::atomic<std::uint8_t>[files]());
}

}  // namespace

std::vector<std::uint32_t> dir_rows_of(const SnapshotTable& table) {
  std::vector<std::uint32_t> rows;
  rows.reserve(table.size() - table.file_count());
  for (std::size_t row = 0; row < table.size(); ++row) {
    if (table.is_dir(row)) rows.push_back(static_cast<std::uint32_t>(row));
  }
  return rows;
}

double DiffResult::deleted_fraction() const {
  return fraction(deleted_rows.size(), prev_files);
}
double DiffResult::readonly_fraction() const {
  return fraction(readonly_rows.size(), prev_files);
}
double DiffResult::updated_fraction() const {
  return fraction(updated_rows.size(), prev_files);
}
double DiffResult::untouched_fraction() const {
  return fraction(untouched_rows.size(), prev_files);
}
double DiffResult::new_fraction() const {
  return fraction(new_rows.size(), cur_files);
}

void diff_probe_range(const PartitionedPathIndex& index,
                      const SnapshotTable& prev, const SnapshotTable& cur,
                      std::size_t begin, std::size_t end,
                      std::atomic<std::uint8_t>* matched, DiffChunkRows* out,
                      const DiffDirProbe* dirs) {
  // No prefetch-ahead here: the index's Bloom pre-filter answers the
  // dominant miss case from L2, so most rows never touch a slot line (and,
  // via lookup_lazy, never materialize the probe-side path either).
  for (std::size_t row = begin; row < end; ++row) {
    const std::uint32_t cur_row = static_cast<std::uint32_t>(row);
    if (cur.is_dir(row)) {
      if (dirs != nullptr) {
        const std::uint32_t pos =
            dirs->index->lookup(prev, cur.path_hash(row), cur.path(row));
        if (pos == DetachedPathIndex::kNotFound) {
          out->new_dirs.push_back(cur_row);
        } else {
          dirs->matched[pos].store(1, std::memory_order_relaxed);
          classify_dir(prev, cur, dirs->index->row_of(pos), cur_row,
                       out->changed_dirs, out->changed_dirs_prev);
        }
      }
      continue;
    }
    const std::uint32_t ordinal = index.lookup_lazy(
        prev, cur.path_hash(row), [&cur, row] { return cur.path(row); });
    if (ordinal == PartitionedPathIndex::kNotFound) {
      out->rows[DiffChunkRows::kNew].push_back(cur_row);
      continue;
    }
    matched[ordinal].store(1, std::memory_order_relaxed);
    const PartitionedPathIndex::Payload& payload = index.payload(ordinal);
    const int k = classify(cur.atime(row) == payload.atime,
                           cur.mtime(row) == payload.mtime,
                           cur.ctime(row) == payload.ctime);
    out->rows[k].push_back(cur_row);
    if (out->record_prev) out->prev_rows[k].push_back(index.row_of(ordinal));
  }
}

void diff_finalize(std::span<const std::uint32_t> prev_file_rows,
                   const std::atomic<std::uint8_t>* matched,
                   std::span<const DiffChunkRows* const> chunks,
                   ThreadPool* pool, DiffResult* out,
                   const DiffFinalizeExtras* extras) {
  std::size_t totals[4] = {0, 0, 0, 0};
  for (const DiffChunkRows* chunk : chunks) {
    for (int k = 0; k < 4; ++k) totals[k] += chunk->rows[k].size();
  }
  out->new_rows.reserve(totals[DiffChunkRows::kNew]);
  out->readonly_rows.reserve(totals[DiffChunkRows::kReadonly]);
  out->updated_rows.reserve(totals[DiffChunkRows::kUpdated]);
  out->untouched_rows.reserve(totals[DiffChunkRows::kUntouched]);
  for (const DiffChunkRows* chunk : chunks) {
    out->new_rows.insert(out->new_rows.end(),
                         chunk->rows[DiffChunkRows::kNew].begin(),
                         chunk->rows[DiffChunkRows::kNew].end());
    out->readonly_rows.insert(out->readonly_rows.end(),
                              chunk->rows[DiffChunkRows::kReadonly].begin(),
                              chunk->rows[DiffChunkRows::kReadonly].end());
    out->updated_rows.insert(out->updated_rows.end(),
                             chunk->rows[DiffChunkRows::kUpdated].begin(),
                             chunk->rows[DiffChunkRows::kUpdated].end());
    out->untouched_rows.insert(out->untouched_rows.end(),
                               chunk->rows[DiffChunkRows::kUntouched].begin(),
                               chunk->rows[DiffChunkRows::kUntouched].end());
  }

  if (extras != nullptr && extras->prev_rows) {
    out->has_prev_rows = true;
    out->readonly_prev_rows.reserve(totals[DiffChunkRows::kReadonly]);
    out->updated_prev_rows.reserve(totals[DiffChunkRows::kUpdated]);
    out->untouched_prev_rows.reserve(totals[DiffChunkRows::kUntouched]);
    for (const DiffChunkRows* chunk : chunks) {
      out->readonly_prev_rows.insert(
          out->readonly_prev_rows.end(),
          chunk->prev_rows[DiffChunkRows::kReadonly].begin(),
          chunk->prev_rows[DiffChunkRows::kReadonly].end());
      out->updated_prev_rows.insert(
          out->updated_prev_rows.end(),
          chunk->prev_rows[DiffChunkRows::kUpdated].begin(),
          chunk->prev_rows[DiffChunkRows::kUpdated].end());
      out->untouched_prev_rows.insert(
          out->untouched_prev_rows.end(),
          chunk->prev_rows[DiffChunkRows::kUntouched].begin(),
          chunk->prev_rows[DiffChunkRows::kUntouched].end());
    }
  }

  if (extras != nullptr && extras->dirs) {
    out->has_dir_diff = true;
    for (const DiffChunkRows* chunk : chunks) {
      out->new_dir_rows.insert(out->new_dir_rows.end(),
                               chunk->new_dirs.begin(), chunk->new_dirs.end());
      out->changed_dir_rows.insert(out->changed_dir_rows.end(),
                                   chunk->changed_dirs.begin(),
                                   chunk->changed_dirs.end());
      out->changed_dir_prev_rows.insert(out->changed_dir_prev_rows.end(),
                                        chunk->changed_dirs_prev.begin(),
                                        chunk->changed_dirs_prev.end());
    }
    // Deleted-directory sweep, serial: directories are a small minority of
    // the snapshot, and prev_dir_rows ascends so the output does too.
    for (std::size_t pos = 0; pos < extras->prev_dir_rows.size(); ++pos) {
      if (extras->dir_matched[pos].load(std::memory_order_relaxed) == 0) {
        out->deleted_dir_rows.push_back(extras->prev_dir_rows[pos]);
      }
    }
  }

  // Deleted sweep: everything never matched. The match counts are already
  // known, so the result is sized exactly before the sweep.
  const std::size_t matched_total = totals[DiffChunkRows::kReadonly] +
                                    totals[DiffChunkRows::kUpdated] +
                                    totals[DiffChunkRows::kUntouched];
  out->deleted_rows.reserve(prev_file_rows.size() - matched_total);
  const std::size_t n = prev_file_rows.size();
  const std::size_t sweep_chunks = n == 0 ? 0 : (n + kDiffGrain - 1) / kDiffGrain;
  std::vector<std::vector<std::uint32_t>> partials(sweep_chunks);
  parallel_for_chunked(
      n, kDiffGrain,
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::uint32_t>& deleted = partials[begin / kDiffGrain];
        for (std::size_t pos = begin; pos < end; ++pos) {
          if (matched[pos].load(std::memory_order_relaxed) == 0) {
            deleted.push_back(prev_file_rows[pos]);
          }
        }
      },
      pool);
  for (const std::vector<std::uint32_t>& deleted : partials) {
    out->deleted_rows.insert(out->deleted_rows.end(), deleted.begin(),
                             deleted.end());
  }
}

DiffResult diff_snapshots(const SnapshotTable& prev, const SnapshotTable& cur,
                          ThreadPool* pool, DiffBreakdown* breakdown,
                          const DiffOptions& options) {
  DiffResult result;
  result.prev_files = prev.file_count();
  result.cur_files = cur.file_count();

  auto mark = std::chrono::steady_clock::now();
  // Index the previous week's files via the subset constructor: lookups
  // return positions in file_rows, so the match flags and the deleted
  // sweep stay dense over files (directory rows get no slots).
  const std::vector<std::uint32_t> file_rows = file_rows_of(prev);
  const PathIndex index(prev, file_rows);
  auto matched = make_matched(file_rows.size());
  std::unique_ptr<DetachedPathIndex> dir_index;
  std::unique_ptr<std::atomic<std::uint8_t>[]> dir_matched;
  if (options.dirs) {
    dir_index = std::make_unique<DetachedPathIndex>(prev, dir_rows_of(prev));
    dir_matched = make_matched(dir_index->size());
  }
  if (breakdown) {
    breakdown->build_s = seconds_since(mark);
    mark = std::chrono::steady_clock::now();
  }

  // Per-chunk classification buffers, merged in chunk order so the final
  // row vectors are ascending regardless of scheduling.
  const std::size_t n = cur.size();
  const std::size_t chunks = n == 0 ? 0 : (n + kDiffGrain - 1) / kDiffGrain;
  std::vector<DiffChunkRows> partials(chunks);
  for (DiffChunkRows& partial : partials) {
    partial.record_prev = options.prev_rows;
  }
  parallel_for_chunked(
      n, kDiffGrain,
      [&](std::size_t begin, std::size_t end) {
        DiffChunkRows& out = partials[begin / kDiffGrain];
        for (std::size_t row = begin; row < end; ++row) {
          const std::size_t ahead = row + kProbePrefetchDistance;
          if (ahead < end && !cur.is_dir(ahead)) {
            index.prefetch(cur.path_hash(ahead));
          }
          const std::uint32_t cur_row = static_cast<std::uint32_t>(row);
          if (cur.is_dir(row)) {
            if (dir_index != nullptr) {
              const std::uint32_t pos = dir_index->lookup(
                  prev, cur.path_hash(row), cur.path(row));
              if (pos == DetachedPathIndex::kNotFound) {
                out.new_dirs.push_back(cur_row);
              } else {
                dir_matched[pos].store(1, std::memory_order_relaxed);
                classify_dir(prev, cur, dir_index->row_of(pos), cur_row,
                             out.changed_dirs, out.changed_dirs_prev);
              }
            }
            continue;
          }
          const std::uint32_t pos =
              index.lookup(cur.path_hash(row), cur.path(row));
          if (pos == PathIndex::kNotFound) {
            out.rows[DiffChunkRows::kNew].push_back(cur_row);
            continue;
          }
          matched[pos].store(1, std::memory_order_relaxed);
          const std::uint32_t prev_row = file_rows[pos];
          const int k = classify(cur.atime(row) == prev.atime(prev_row),
                                 cur.mtime(row) == prev.mtime(prev_row),
                                 cur.ctime(row) == prev.ctime(prev_row));
          out.rows[k].push_back(cur_row);
          if (out.record_prev) out.prev_rows[k].push_back(prev_row);
        }
      },
      pool);
  if (breakdown) {
    breakdown->probe_s = seconds_since(mark);
    mark = std::chrono::steady_clock::now();
  }

  std::vector<const DiffChunkRows*> chunk_ptrs;
  chunk_ptrs.reserve(partials.size());
  for (const DiffChunkRows& partial : partials) chunk_ptrs.push_back(&partial);
  DiffFinalizeExtras extras;
  extras.prev_rows = options.prev_rows;
  extras.dirs = options.dirs;
  if (dir_index != nullptr) {
    extras.prev_dir_rows = dir_index->rows();
    extras.dir_matched = dir_matched.get();
  }
  diff_finalize(file_rows, matched.get(), chunk_ptrs, pool, &result, &extras);
  if (breakdown) breakdown->sweep_s = seconds_since(mark);
  return result;
}

DiffResult diff_snapshots_partitioned(const SnapshotTable& prev,
                                      const SnapshotTable& cur,
                                      ThreadPool* pool,
                                      DiffBreakdown* breakdown,
                                      const DiffOptions& options) {
  DiffResult result;
  result.prev_files = prev.file_count();
  result.cur_files = cur.file_count();

  auto mark = std::chrono::steady_clock::now();
  const PartitionedPathIndex index(prev, pool);
  auto matched = make_matched(index.size());
  std::unique_ptr<DetachedPathIndex> dir_index;
  std::unique_ptr<std::atomic<std::uint8_t>[]> dir_matched;
  DiffDirProbe dir_probe;
  if (options.dirs) {
    dir_index = std::make_unique<DetachedPathIndex>(prev, dir_rows_of(prev));
    dir_matched = make_matched(dir_index->size());
    dir_probe.index = dir_index.get();
    dir_probe.matched = dir_matched.get();
  }
  if (breakdown) {
    breakdown->build_s = seconds_since(mark);
    mark = std::chrono::steady_clock::now();
  }

  const std::size_t n = cur.size();
  const std::size_t chunks = n == 0 ? 0 : (n + kDiffGrain - 1) / kDiffGrain;
  std::vector<DiffChunkRows> partials(chunks);
  for (DiffChunkRows& partial : partials) {
    partial.record_prev = options.prev_rows;
  }
  parallel_for_chunked(
      n, kDiffGrain,
      [&](std::size_t begin, std::size_t end) {
        diff_probe_range(index, prev, cur, begin, end, matched.get(),
                         &partials[begin / kDiffGrain],
                         options.dirs ? &dir_probe : nullptr);
      },
      pool);
  if (breakdown) {
    breakdown->probe_s = seconds_since(mark);
    mark = std::chrono::steady_clock::now();
  }

  std::vector<const DiffChunkRows*> chunk_ptrs;
  chunk_ptrs.reserve(partials.size());
  for (const DiffChunkRows& partial : partials) chunk_ptrs.push_back(&partial);
  DiffFinalizeExtras extras;
  extras.prev_rows = options.prev_rows;
  extras.dirs = options.dirs;
  if (dir_index != nullptr) {
    extras.prev_dir_rows = dir_index->rows();
    extras.dir_matched = dir_matched.get();
  }
  diff_finalize(index.file_rows(), matched.get(), chunk_ptrs, pool, &result,
                &extras);
  if (breakdown) breakdown->sweep_s = seconds_since(mark);
  return result;
}

namespace {

/// Sorts `rows` of one table by (path hash, path).
std::vector<std::uint32_t> sorted_by_path(const SnapshotTable& table,
                                          std::vector<std::uint32_t> rows) {
  std::sort(rows.begin(), rows.end(),
            [&table](std::uint32_t a, std::uint32_t b) {
              if (table.path_hash(a) != table.path_hash(b)) {
                return table.path_hash(a) < table.path_hash(b);
              }
              return table.path(a) < table.path(b);
            });
  return rows;
}

void classify_pair(const SnapshotTable& prev, const SnapshotTable& cur,
                   std::uint32_t prev_row, std::uint32_t cur_row,
                   bool record_prev, DiffResult& result) {
  const bool atime_same = cur.atime(cur_row) == prev.atime(prev_row);
  const bool mtime_same = cur.mtime(cur_row) == prev.mtime(prev_row);
  const bool ctime_same = cur.ctime(cur_row) == prev.ctime(prev_row);
  if (mtime_same && ctime_same && atime_same) {
    result.untouched_rows.push_back(cur_row);
    if (record_prev) result.untouched_prev_rows.push_back(prev_row);
  } else if (mtime_same && ctime_same) {
    result.readonly_rows.push_back(cur_row);
    if (record_prev) result.readonly_prev_rows.push_back(prev_row);
  } else {
    result.updated_rows.push_back(cur_row);
    if (record_prev) result.updated_prev_rows.push_back(prev_row);
  }
}

/// Restores the hash join's ascending-cur-row contract for a matched class
/// while keeping the prev list index-parallel. Cur rows are unique, so the
/// pair sort is a sort by cur row.
void co_sort_by_cur(std::vector<std::uint32_t>& cur_rows,
                    std::vector<std::uint32_t>& prev_rows) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pairs;
  pairs.reserve(cur_rows.size());
  for (std::size_t i = 0; i < cur_rows.size(); ++i) {
    pairs.emplace_back(cur_rows[i], prev_rows[i]);
  }
  std::sort(pairs.begin(), pairs.end());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    cur_rows[i] = pairs[i].first;
    prev_rows[i] = pairs[i].second;
  }
}

}  // namespace

DiffResult diff_snapshots_sortmerge(const SnapshotTable& prev,
                                    const SnapshotTable& cur,
                                    DiffBreakdown* breakdown,
                                    const DiffOptions& options) {
  DiffResult result;
  result.prev_files = prev.file_count();
  result.cur_files = cur.file_count();
  result.has_prev_rows = options.prev_rows;

  auto mark = std::chrono::steady_clock::now();
  const std::vector<std::uint32_t> lhs =
      sorted_by_path(prev, file_rows_of(prev));
  const std::vector<std::uint32_t> rhs =
      sorted_by_path(cur, file_rows_of(cur));
  if (breakdown) {
    breakdown->build_s = seconds_since(mark);
    mark = std::chrono::steady_clock::now();
  }

  std::size_t i = 0, j = 0;
  auto key_less = [&](std::uint32_t a, std::uint32_t b) {
    if (prev.path_hash(a) != cur.path_hash(b)) {
      return prev.path_hash(a) < cur.path_hash(b);
    }
    return prev.path(a) < cur.path(b);
  };
  while (i < lhs.size() && j < rhs.size()) {
    const std::uint32_t a = lhs[i];
    const std::uint32_t b = rhs[j];
    if (key_less(a, b)) {
      result.deleted_rows.push_back(a);
      ++i;
    } else if (prev.path_hash(a) == cur.path_hash(b) &&
               prev.path(a) == cur.path(b)) {
      classify_pair(prev, cur, a, b, options.prev_rows, result);
      ++i;
      ++j;
    } else {
      result.new_rows.push_back(b);
      ++j;
    }
  }
  for (; i < lhs.size(); ++i) result.deleted_rows.push_back(lhs[i]);
  for (; j < rhs.size(); ++j) result.new_rows.push_back(rhs[j]);

  if (options.dirs) {
    result.has_dir_diff = true;
    const std::vector<std::uint32_t> dl =
        sorted_by_path(prev, dir_rows_of(prev));
    const std::vector<std::uint32_t> dr =
        sorted_by_path(cur, dir_rows_of(cur));
    std::size_t p = 0, q = 0;
    while (p < dl.size() && q < dr.size()) {
      const std::uint32_t a = dl[p];
      const std::uint32_t b = dr[q];
      if (key_less(a, b)) {
        result.deleted_dir_rows.push_back(a);
        ++p;
      } else if (prev.path_hash(a) == cur.path_hash(b) &&
                 prev.path(a) == cur.path(b)) {
        classify_dir(prev, cur, a, b, result.changed_dir_rows,
                     result.changed_dir_prev_rows);
        ++p;
        ++q;
      } else {
        result.new_dir_rows.push_back(b);
        ++q;
      }
    }
    for (; p < dl.size(); ++p) result.deleted_dir_rows.push_back(dl[p]);
    for (; q < dr.size(); ++q) result.new_dir_rows.push_back(dr[q]);
  }
  if (breakdown) {
    breakdown->probe_s = seconds_since(mark);
    mark = std::chrono::steady_clock::now();
  }

  // Restore the hash join's row-order contract.
  std::sort(result.new_rows.begin(), result.new_rows.end());
  std::sort(result.deleted_rows.begin(), result.deleted_rows.end());
  if (options.prev_rows) {
    co_sort_by_cur(result.readonly_rows, result.readonly_prev_rows);
    co_sort_by_cur(result.updated_rows, result.updated_prev_rows);
    co_sort_by_cur(result.untouched_rows, result.untouched_prev_rows);
  } else {
    for (auto* rows : {&result.readonly_rows, &result.updated_rows,
                       &result.untouched_rows}) {
      std::sort(rows->begin(), rows->end());
    }
  }
  if (options.dirs) {
    std::sort(result.new_dir_rows.begin(), result.new_dir_rows.end());
    std::sort(result.deleted_dir_rows.begin(), result.deleted_dir_rows.end());
    co_sort_by_cur(result.changed_dir_rows, result.changed_dir_prev_rows);
  }
  if (breakdown) breakdown->sweep_s = seconds_since(mark);
  return result;
}

DiffResult diff_snapshots_with(DiffStrategy strategy,
                               const SnapshotTable& prev,
                               const SnapshotTable& cur, ThreadPool* pool,
                               DiffBreakdown* breakdown,
                               const DiffOptions& options) {
  switch (strategy) {
    case DiffStrategy::kSortMerge:
      return diff_snapshots_sortmerge(prev, cur, breakdown, options);
    case DiffStrategy::kPartitioned:
      return diff_snapshots_partitioned(prev, cur, pool, breakdown, options);
    case DiffStrategy::kHash:
      break;
  }
  return diff_snapshots(prev, cur, pool, breakdown, options);
}

}  // namespace spider
