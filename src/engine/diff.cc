#include "engine/diff.h"

#include <algorithm>
#include <atomic>
#include <memory>

#include "engine/hash_index.h"
#include "util/parallel.h"

namespace spider {

namespace {

double fraction(std::size_t part, std::size_t whole) {
  return whole == 0 ? 0.0 : static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace

double DiffResult::deleted_fraction() const {
  return fraction(deleted_rows.size(), prev_files);
}
double DiffResult::readonly_fraction() const {
  return fraction(readonly_rows.size(), prev_files);
}
double DiffResult::updated_fraction() const {
  return fraction(updated_rows.size(), prev_files);
}
double DiffResult::untouched_fraction() const {
  return fraction(untouched_rows.size(), prev_files);
}
double DiffResult::new_fraction() const {
  return fraction(new_rows.size(), cur_files);
}

DiffResult diff_snapshots(const SnapshotTable& prev,
                          const SnapshotTable& cur) {
  DiffResult result;
  result.prev_files = prev.file_count();
  result.cur_files = cur.file_count();

  const PathIndex index(prev, /*files_only=*/true);

  // matched[row] flags previous-week files found in the current week; what
  // remains unmatched was deleted. Transitions are 0 -> 1 only, so relaxed
  // atomics suffice.
  std::unique_ptr<std::atomic<std::uint8_t>[]> matched(
      new std::atomic<std::uint8_t>[prev.size()]);
  for (std::size_t i = 0; i < prev.size(); ++i) {
    matched[i].store(0, std::memory_order_relaxed);
  }

  // Per-chunk classification buffers, merged in chunk order so the final
  // row vectors are ascending regardless of scheduling.
  struct Partial {
    std::vector<std::uint32_t> rows[4];  // new, readonly, updated, untouched
  };
  constexpr std::size_t kGrain = 8192;
  const std::size_t n = cur.size();
  const std::size_t chunks = n == 0 ? 0 : (n + kGrain - 1) / kGrain;
  std::vector<Partial> partials(chunks);

  parallel_for_chunked(n, kGrain, [&](std::size_t begin, std::size_t end) {
    Partial& p = partials[begin / kGrain];
    for (std::size_t row = begin; row < end; ++row) {
      if (cur.is_dir(row)) continue;
      const std::uint32_t prev_row =
          index.lookup(cur.path_hash(row), cur.path(row));
      if (prev_row == PathIndex::kNotFound) {
        p.rows[0].push_back(static_cast<std::uint32_t>(row));
        continue;
      }
      matched[prev_row].store(1, std::memory_order_relaxed);
      const bool atime_same = cur.atime(row) == prev.atime(prev_row);
      const bool mtime_same = cur.mtime(row) == prev.mtime(prev_row);
      const bool ctime_same = cur.ctime(row) == prev.ctime(prev_row);
      if (mtime_same && ctime_same && atime_same) {
        p.rows[3].push_back(static_cast<std::uint32_t>(row));
      } else if (mtime_same && ctime_same) {
        p.rows[2].push_back(static_cast<std::uint32_t>(row));
      } else {
        p.rows[1].push_back(static_cast<std::uint32_t>(row));
      }
    }
  });

  std::size_t totals[4] = {0, 0, 0, 0};
  for (const Partial& p : partials) {
    for (int k = 0; k < 4; ++k) totals[k] += p.rows[k].size();
  }
  result.new_rows.reserve(totals[0]);
  result.updated_rows.reserve(totals[1]);
  result.readonly_rows.reserve(totals[2]);
  result.untouched_rows.reserve(totals[3]);
  for (Partial& p : partials) {
    result.new_rows.insert(result.new_rows.end(), p.rows[0].begin(),
                           p.rows[0].end());
    result.updated_rows.insert(result.updated_rows.end(), p.rows[1].begin(),
                               p.rows[1].end());
    result.readonly_rows.insert(result.readonly_rows.end(), p.rows[2].begin(),
                                p.rows[2].end());
    result.untouched_rows.insert(result.untouched_rows.end(),
                                 p.rows[3].begin(), p.rows[3].end());
  }

  for (std::size_t row = 0; row < prev.size(); ++row) {
    if (prev.is_dir(row)) continue;
    if (matched[row].load(std::memory_order_relaxed) == 0) {
      result.deleted_rows.push_back(static_cast<std::uint32_t>(row));
    }
  }
  return result;
}

namespace {

/// Rows of one table's regular files, sorted by (path hash, row).
std::vector<std::uint32_t> sorted_file_rows(const SnapshotTable& table) {
  std::vector<std::uint32_t> rows;
  rows.reserve(table.file_count());
  for (std::size_t row = 0; row < table.size(); ++row) {
    if (!table.is_dir(row)) rows.push_back(static_cast<std::uint32_t>(row));
  }
  std::sort(rows.begin(), rows.end(),
            [&table](std::uint32_t a, std::uint32_t b) {
              if (table.path_hash(a) != table.path_hash(b)) {
                return table.path_hash(a) < table.path_hash(b);
              }
              return table.path(a) < table.path(b);
            });
  return rows;
}

void classify_pair(const SnapshotTable& prev, const SnapshotTable& cur,
                   std::uint32_t prev_row, std::uint32_t cur_row,
                   DiffResult& result) {
  const bool atime_same = cur.atime(cur_row) == prev.atime(prev_row);
  const bool mtime_same = cur.mtime(cur_row) == prev.mtime(prev_row);
  const bool ctime_same = cur.ctime(cur_row) == prev.ctime(prev_row);
  if (mtime_same && ctime_same && atime_same) {
    result.untouched_rows.push_back(cur_row);
  } else if (mtime_same && ctime_same) {
    result.readonly_rows.push_back(cur_row);
  } else {
    result.updated_rows.push_back(cur_row);
  }
}

}  // namespace

DiffResult diff_snapshots_sortmerge(const SnapshotTable& prev,
                                    const SnapshotTable& cur) {
  DiffResult result;
  result.prev_files = prev.file_count();
  result.cur_files = cur.file_count();

  const std::vector<std::uint32_t> lhs = sorted_file_rows(prev);
  const std::vector<std::uint32_t> rhs = sorted_file_rows(cur);

  std::size_t i = 0, j = 0;
  auto key_less = [&](std::uint32_t a, std::uint32_t b) {
    if (prev.path_hash(a) != cur.path_hash(b)) {
      return prev.path_hash(a) < cur.path_hash(b);
    }
    return prev.path(a) < cur.path(b);
  };
  while (i < lhs.size() && j < rhs.size()) {
    const std::uint32_t a = lhs[i];
    const std::uint32_t b = rhs[j];
    if (key_less(a, b)) {
      result.deleted_rows.push_back(a);
      ++i;
    } else if (prev.path_hash(a) == cur.path_hash(b) &&
               prev.path(a) == cur.path(b)) {
      classify_pair(prev, cur, a, b, result);
      ++i;
      ++j;
    } else {
      result.new_rows.push_back(b);
      ++j;
    }
  }
  for (; i < lhs.size(); ++i) result.deleted_rows.push_back(lhs[i]);
  for (; j < rhs.size(); ++j) result.new_rows.push_back(rhs[j]);

  // Restore the hash join's row-order contract.
  for (auto* rows : {&result.new_rows, &result.readonly_rows,
                     &result.updated_rows, &result.untouched_rows,
                     &result.deleted_rows}) {
    std::sort(rows->begin(), rows->end());
  }
  return result;
}

}  // namespace spider
