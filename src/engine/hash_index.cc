#include "engine/hash_index.h"

#include <algorithm>
#include <atomic>
#include <bit>

namespace spider {

namespace {

constexpr std::uint64_t kSlotLowMask = 0xffff'ffffull;

}  // namespace

PathIndex::PathIndex(const SnapshotTable& table, bool files_only)
    : table_(table) {
  const std::size_t rows = table.size();
  // Load factor <= 0.5 keeps linear-probe chains short.
  const std::size_t capacity =
      std::bit_ceil(std::max<std::size_t>(rows * 2, 16));
  slots_.assign(capacity, 0);
  mask_ = capacity - 1;

  for (std::size_t row = 0; row < rows; ++row) {
    if (files_only && table.is_dir(row)) continue;
    const std::uint64_t hash = table.path_hash(row);
    const std::uint32_t fp = fingerprint_of(hash);
    std::uint64_t slot = hash & mask_;
    for (;;) {
      const std::uint64_t stored = slots_[slot];
      if ((stored & kSlotLowMask) == 0) {
        slots_[slot] = (static_cast<std::uint64_t>(fp) << 32) |
                       (static_cast<std::uint64_t>(row) + 1);
        ++size_;
        break;
      }
      const std::uint32_t other = static_cast<std::uint32_t>(stored) - 1;
      if (static_cast<std::uint32_t>(stored >> 32) == fp &&
          table_.path(other) == table.path(row)) {
        break;  // duplicate path: keep the first row
      }
      slot = (slot + 1) & mask_;
    }
  }
}

PathIndex::PathIndex(const SnapshotTable& table,
                     std::span<const std::uint32_t> rows)
    : table_(table), subset_(rows), subset_mode_(true) {
  const std::size_t capacity =
      std::bit_ceil(std::max<std::size_t>(rows.size() * 2, 16));
  slots_.assign(capacity, 0);
  mask_ = capacity - 1;

  for (std::size_t pos = 0; pos < rows.size(); ++pos) {
    const std::uint32_t row = rows[pos];
    const std::uint64_t hash = table.path_hash(row);
    const std::uint32_t fp = fingerprint_of(hash);
    std::uint64_t slot = hash & mask_;
    for (;;) {
      const std::uint64_t stored = slots_[slot];
      if ((stored & kSlotLowMask) == 0) {
        slots_[slot] = (static_cast<std::uint64_t>(fp) << 32) |
                       (static_cast<std::uint64_t>(pos) + 1);
        ++size_;
        break;
      }
      const std::uint32_t other =
          subset_[static_cast<std::uint32_t>(stored) - 1];
      if (static_cast<std::uint32_t>(stored >> 32) == fp &&
          table_.path(other) == table.path(row)) {
        break;  // duplicate path: keep the first position
      }
      slot = (slot + 1) & mask_;
    }
  }
}

DetachedPathIndex::DetachedPathIndex(const SnapshotTable& table,
                                     std::vector<std::uint32_t> rows)
    : rows_(std::move(rows)) {
  const std::size_t capacity =
      std::bit_ceil(std::max<std::size_t>(rows_.size() * 2, 16));
  slots_.assign(capacity, 0);
  mask_ = capacity - 1;

  for (std::size_t pos = 0; pos < rows_.size(); ++pos) {
    const std::uint32_t row = rows_[pos];
    const std::uint64_t hash = table.path_hash(row);
    const std::uint32_t fp = static_cast<std::uint32_t>(hash >> 32);
    std::uint64_t slot = hash & mask_;
    for (;;) {
      const std::uint64_t stored = slots_[slot];
      if ((stored & kSlotLowMask) == 0) {
        slots_[slot] = (static_cast<std::uint64_t>(fp) << 32) |
                       (static_cast<std::uint64_t>(pos) + 1);
        break;
      }
      const std::uint32_t other =
          rows_[static_cast<std::uint32_t>(stored) - 1];
      if (static_cast<std::uint32_t>(stored >> 32) == fp &&
          table.path(other) == table.path(row)) {
        break;  // duplicate path: keep the first position
      }
      slot = (slot + 1) & mask_;
    }
  }
}

PartitionedPathIndex::PartitionedPathIndex(const SnapshotTable& table,
                                           ThreadPool* pool) {
  // Ascending file-row gather, fused with the payload gather and written
  // in two phases (parallel per-chunk counts, serial prefix over chunk
  // cursors, parallel direct writes) so the row list and the classifier
  // timestamps land at their final offsets in one pass — no partial
  // vectors to splice, and the chunk layout stays a pure function of the
  // row count.
  const std::size_t n = table.size();
  const std::size_t chunks =
      n == 0 ? 0 : (n + kRadixGrainRows - 1) / kRadixGrainRows;
  std::vector<std::size_t> chunk_offsets(chunks + 1, 0);
  parallel_for_chunked(
      n, kRadixGrainRows,
      [&](std::size_t begin, std::size_t end) {
        std::size_t files = 0;
        for (std::size_t row = begin; row < end; ++row) {
          files += !table.is_dir(row);
        }
        chunk_offsets[begin / kRadixGrainRows + 1] = files;
      },
      pool);
  for (std::size_t c = 0; c < chunks; ++c) {
    chunk_offsets[c + 1] += chunk_offsets[c];
  }
  file_rows_.resize(chunk_offsets[chunks]);
  payloads_.resize(chunk_offsets[chunks]);
  parallel_for_chunked(
      n, kRadixGrainRows,
      [&](std::size_t begin, std::size_t end) {
        std::size_t w = chunk_offsets[begin / kRadixGrainRows];
        for (std::size_t row = begin; row < end; ++row) {
          if (!table.is_dir(row)) {
            file_rows_[w] = static_cast<std::uint32_t>(row);
            payloads_[w] =
                Payload{table.atime(row), table.ctime(row), table.mtime(row)};
            ++w;
          }
        }
      },
      pool);

  // Partition ordinals (not rows): matched flags and the deleted sweep in
  // the diff stay dense over files, and row_of() recovers the row.
  parts_ = radix_partition(
      file_rows_.size(), radix_bits_for(file_rows_.size()),
      [&](std::size_t i) { return table.path_hash(file_rows_[i]); },
      [](std::size_t) { return true; }, pool);

  // Per-shard capacity: power of two at load factor <= 0.5, laid out in
  // one concatenated array. Each shard's range is private to the one task
  // that builds it — distinct bytes are distinct memory locations, so the
  // build needs no atomics.
  const std::size_t parts = parts_.partition_count();
  shards_.resize(parts);
  std::size_t total = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t count = parts_.offsets[p + 1] - parts_.offsets[p];
    const std::size_t capacity =
        std::bit_ceil(std::max<std::size_t>(count * 2, 2));
    shards_[p] = ShardRef{static_cast<std::uint32_t>(total),
                          static_cast<std::uint32_t>(capacity - 1)};
    total += capacity;
  }
  slots_.resize(total);

  // Bloom pre-filter: ~16 bits per key overall, clamped so small tables
  // pay a few cache lines and huge ones stay L2-sized. Sharded like the
  // slots — each partition owns a word-aligned region (>= one word), so
  // build_shard sets its keys' bits with plain ORs, no atomics anywhere
  // in the build.
  const std::size_t bloom_bits = std::bit_ceil(std::clamp<std::size_t>(
      file_rows_.size() * 16, 1024, std::size_t{1} << 25));
  const std::uint32_t bloom_total_bits =
      static_cast<std::uint32_t>(std::bit_width(bloom_bits - 1));
  bloom_local_bits_ = bloom_total_bits > parts_.bits + 6
                          ? bloom_total_bits - parts_.bits
                          : 6;
  bloom_local_mask_ = (std::uint64_t{1} << bloom_local_bits_) - 1;
  bloom_.assign((std::size_t{1} << (parts_.bits + bloom_local_bits_)) / 64, 0);

  parallel_for(
      parts, [&](std::size_t p) { build_shard(table, p); }, pool,
      /*grain=*/1);
}

void PartitionedPathIndex::build_shard(const SnapshotTable& table,
                                       std::size_t p) {
  const ShardRef shard = shards_[p];
  Slot* base = slots_.data() + shard.base;
  const std::uint64_t mask = shard.mask;
  const std::span<const std::uint32_t> ordinals = parts_.partition_items(p);
  const std::span<const std::uint64_t> keys = parts_.partition_keys(p);
  for (std::size_t i = 0; i < ordinals.size(); ++i) {
    const std::uint32_t ordinal = ordinals[i];
    const std::uint64_t hash = keys[i];
    const std::uint64_t bloom_bit = bloom_bit_of(hash);
    bloom_[bloom_bit >> 6] |= std::uint64_t{1} << (bloom_bit & 63);
    const std::uint32_t fp = fingerprint_of(hash);
    std::uint64_t slot = hash & mask;
    for (;;) {
      Slot& entry = base[slot];
      if (entry.ordinal == kNotFound) {
        entry.fingerprint = fp;
        entry.ordinal = ordinal;
        break;
      }
      if (entry.fingerprint == fp &&
          table.path(file_rows_[entry.ordinal]) ==
              table.path(file_rows_[ordinal])) {
        break;  // duplicate path: ordinals ascend, so the first row wins
      }
      slot = (slot + 1) & mask;
    }
  }
}

}  // namespace spider
