#include "engine/hash_index.h"

#include <bit>

namespace spider {

PathIndex::PathIndex(const SnapshotTable& table, bool files_only)
    : table_(table) {
  const std::size_t rows = table.size();
  // Load factor <= 0.5 keeps linear-probe chains short.
  const std::size_t capacity = std::bit_ceil(std::max<std::size_t>(rows * 2, 16));
  slots_.assign(capacity, 0);
  mask_ = capacity - 1;

  for (std::size_t row = 0; row < rows; ++row) {
    if (files_only && table.is_dir(row)) continue;
    std::uint64_t slot = table.path_hash(row) & mask_;
    for (;;) {
      if (slots_[slot] == 0) {
        slots_[slot] = static_cast<std::uint32_t>(row) + 1;
        ++size_;
        break;
      }
      const std::uint32_t other = slots_[slot] - 1;
      if (table_.path_hash(other) == table.path_hash(row) &&
          table_.path(other) == table.path(row)) {
        break;  // duplicate path: keep the first row
      }
      slot = (slot + 1) & mask_;
    }
  }
}

std::uint32_t PathIndex::lookup(std::uint64_t hash,
                                std::string_view path) const {
  std::uint64_t slot = hash & mask_;
  for (;;) {
    const std::uint32_t stored = slots_[slot];
    if (stored == 0) return kNotFound;
    const std::uint32_t row = stored - 1;
    if (table_.path_hash(row) == hash && table_.path(row) == path) {
      return row;
    }
    slot = (slot + 1) & mask_;
  }
}

}  // namespace spider
