// Flat open-addressing key→value tables for the aggregation layer: the
// generalization of u64set.h's design from membership to GROUP BY. Keys
// are 64-bit; values live in a parallel array so probes touch only the key
// lane (one cache line covers eight candidate slots). Two key policies:
//
//   * IdentityKeyMix — for keys that are already well-mixed (path hashes,
//     hash_bytes output). Slot selection uses the low bits directly, so
//     the top bits stay free for radix partitioning (engine/partition.h)
//     without correlation between the two.
//   * FingerprintKeyMix — for raw ids (gids, packed user pairs) whose low
//     bits are dense or structured; mix64 avalanches them first.
//
// Growth discipline (shared with the fixed U64Set): probe FIRST, grow only
// when the probe ends at a genuine insert — a duplicate-heavy stream must
// never trigger a resize, because duplicates do not add occupancy.
//
// Iteration (for_each / entries) walks the slot array in index order with
// the reserved empty key last. For a fixed insertion sequence the layout —
// and therefore the iteration order — is a pure function of the inputs,
// which is what lets the study's ordered merges stay bit-identical at any
// thread count.
#pragma once

#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/hash.h"
#include "util/serialize.h"

namespace spider {

struct IdentityKeyMix {
  static constexpr std::uint64_t mix(std::uint64_t key) { return key; }
};

struct FingerprintKeyMix {
  static constexpr std::uint64_t mix(std::uint64_t key) { return mix64(key); }
};

/// Growable open-addressing linear-probe map from 64-bit keys to V.
/// Key 0 is reserved as the empty-slot marker and handled out of line, so
/// the full key space is usable. Load factor is kept at or below 1/2.
template <typename V, typename KeyMix = IdentityKeyMix>
class FlatMap {
 public:
  /// `expected` sizes the initial allocation; 0 defers allocation to the
  /// first insert (cheap empty maps for sparse per-chunk states).
  explicit FlatMap(std::size_t expected = 0) {
    if (expected > 0) allocate(capacity_for(expected));
  }

  /// Insert-or-find: returns the value slot for `key`, default-constructing
  /// it on first insertion.
  V& slot(std::uint64_t key) {
    if (key == kEmptyKey) {
      has_empty_key_ = true;
      return empty_value_;
    }
    if (keys_.empty()) allocate(kMinCapacity);
    std::uint64_t s = KeyMix::mix(key) & mask_;
    for (;;) {
      if (keys_[s] == key) return values_[s];
      if (keys_[s] == kEmptyKey) {
        // Probe-before-grow: only a genuine insert may resize.
        if ((size_ + 1) * 2 > keys_.size()) {
          grow();
          s = place(key);
        } else {
          keys_[s] = key;
        }
        ++size_;
        return values_[s];
      }
      s = (s + 1) & mask_;
    }
  }

  V* find(std::uint64_t key) {
    return const_cast<V*>(std::as_const(*this).find(key));
  }
  const V* find(std::uint64_t key) const {
    if (key == kEmptyKey) return has_empty_key_ ? &empty_value_ : nullptr;
    if (keys_.empty()) return nullptr;
    std::uint64_t s = KeyMix::mix(key) & mask_;
    for (;;) {
      if (keys_[s] == key) return &values_[s];
      if (keys_[s] == kEmptyKey) return nullptr;
      s = (s + 1) & mask_;
    }
  }

  bool contains(std::uint64_t key) const { return find(key) != nullptr; }

  std::size_t size() const { return size_ + (has_empty_key_ ? 1 : 0); }
  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return keys_.size(); }

  /// Visits (key, value) in slot order, the reserved empty key last.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t s = 0; s < keys_.size(); ++s) {
      if (keys_[s] != kEmptyKey) fn(keys_[s], values_[s]);
    }
    if (has_empty_key_) fn(kEmptyKey, empty_value_);
  }

  /// Mutable visit, same order.
  template <typename Fn>
  void for_each_mut(Fn&& fn) {
    for (std::size_t s = 0; s < keys_.size(); ++s) {
      if (keys_[s] != kEmptyKey) fn(keys_[s], values_[s]);
    }
    if (has_empty_key_) fn(kEmptyKey, empty_value_);
  }

  void clear() {
    keys_.clear();
    values_.clear();
    mask_ = 0;
    size_ = 0;
    has_empty_key_ = false;
    empty_value_ = V{};
  }

  /// Checkpoint image: the raw key/value arrays verbatim. Iteration order
  /// is slot order and therefore layout-dependent, so preserving the
  /// layout byte-for-byte is what keeps a resumed study's ordered folds —
  /// and hence its rendered output — identical to the uninterrupted run.
  /// Requires a trivially-copyable V (all checkpointed maps qualify).
  void save_state(StateWriter& w) const {
    w.vec(keys_);
    w.vec(values_);
    w.u64(size_);
    w.u8(has_empty_key_ ? 1 : 0);
    w.pod(empty_value_);
  }
  bool load_state(StateReader& r) {
    if (!r.vec(&keys_) || !r.vec(&values_)) return false;
    size_ = static_cast<std::size_t>(r.u64());
    has_empty_key_ = r.u8() != 0;
    if (!r.pod(&empty_value_) || !r.ok()) return false;
    if (keys_.size() != values_.size()) return false;
    if (keys_.empty()) {
      mask_ = 0;
      return size_ == 0;
    }
    if ((keys_.size() & (keys_.size() - 1)) != 0 || size_ * 2 > keys_.size()) {
      return false;
    }
    mask_ = keys_.size() - 1;
    return true;
  }

 private:
  static constexpr std::uint64_t kEmptyKey = 0;
  static constexpr std::size_t kMinCapacity = 16;

  static std::size_t capacity_for(std::size_t expected) {
    return std::bit_ceil(std::max<std::size_t>(expected * 2, kMinCapacity));
  }

  void allocate(std::size_t capacity) {
    keys_.assign(capacity, kEmptyKey);
    values_.assign(capacity, V{});
    mask_ = capacity - 1;
  }

  /// Probes for the empty slot of a key known to be absent and claims it.
  std::uint64_t place(std::uint64_t key) {
    std::uint64_t s = KeyMix::mix(key) & mask_;
    while (keys_[s] != kEmptyKey) s = (s + 1) & mask_;
    keys_[s] = key;
    return s;
  }

  void grow() {
    std::vector<std::uint64_t> old_keys;
    std::vector<V> old_values;
    old_keys.swap(keys_);
    old_values.swap(values_);
    allocate(old_keys.size() * 2);
    for (std::size_t s = 0; s < old_keys.size(); ++s) {
      if (old_keys[s] == kEmptyKey) continue;
      values_[place(old_keys[s])] = std::move(old_values[s]);
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<V> values_;
  std::uint64_t mask_ = 0;
  std::size_t size_ = 0;
  bool has_empty_key_ = false;
  V empty_value_{};
};

/// Count map over 64-bit keys — the GROUP BY accumulator.
template <typename KeyMix = IdentityKeyMix>
class BasicFlatCountMap : public FlatMap<std::uint64_t, KeyMix> {
 public:
  using FlatMap<std::uint64_t, KeyMix>::FlatMap;

  void add(std::uint64_t key, std::uint64_t weight = 1) {
    this->slot(key) += weight;
  }

  std::uint64_t count(std::uint64_t key) const {
    const std::uint64_t* v = this->find(key);
    return v == nullptr ? 0 : *v;
  }
};

/// For pre-mixed keys (path hashes); the default in the study pipeline.
using FlatCountMap = BasicFlatCountMap<IdentityKeyMix>;
/// For raw ids (gids, packed pairs) that need avalanching first.
using FlatCountMapRaw = BasicFlatCountMap<FingerprintKeyMix>;

/// Serial fold of `from` into `into`; addition commutes, so callers may
/// fold partials in any fixed order (the study folds in chunk order).
template <typename KeyMix>
void merge_flat_counts(BasicFlatCountMap<KeyMix>& into,
                       const BasicFlatCountMap<KeyMix>& from) {
  from.for_each(
      [&into](std::uint64_t key, std::uint64_t count) { into.add(key, count); });
}

}  // namespace spider
