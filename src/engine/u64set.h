// U64Set: a growable open-addressing set of 64-bit keys, used to count
// distinct paths across the whole 72-week series (Fig 7/8's "unique files
// and directories" census: ~4 billion at full scale, millions at bench
// scale). Keys are already well-mixed path hashes, so identity hashing with
// linear probing is both fast and collision-safe at the study's scale
// (expected false-merge count for 10M keys over a 64-bit space: ~3e-6).
#pragma once

#include <cstdint>
#include <vector>

#include "util/serialize.h"

namespace spider {

class U64Set {
 public:
  explicit U64Set(std::size_t expected = 16) {
    std::size_t capacity = 16;
    while (capacity < expected * 2) capacity <<= 1;
    slots_.assign(capacity, kEmpty);
    mask_ = capacity - 1;
  }

  /// Inserts `key`; returns true when the key was not present before.
  /// Probe-before-grow: the duplicate check runs first, so a duplicate-heavy
  /// stream never resizes the table (duplicates add no occupancy).
  bool insert(std::uint64_t key) {
    if (key == kEmpty) {
      const bool fresh = !has_empty_key_;
      has_empty_key_ = true;
      return fresh;
    }
    std::uint64_t slot = key & mask_;
    for (;;) {
      if (slots_[slot] == kEmpty) break;
      if (slots_[slot] == key) return false;
      slot = (slot + 1) & mask_;
    }
    if ((size_ + 1) * 2 > slots_.size()) {
      grow();
      slot = place(key);
    } else {
      slots_[slot] = key;
    }
    ++size_;
    return true;
  }

  bool contains(std::uint64_t key) const {
    if (key == kEmpty) return has_empty_key_;
    std::uint64_t slot = key & mask_;
    for (;;) {
      if (slots_[slot] == kEmpty) return false;
      if (slots_[slot] == key) return true;
      slot = (slot + 1) & mask_;
    }
  }

  std::size_t size() const { return size_ + (has_empty_key_ ? 1 : 0); }
  std::size_t capacity() const { return slots_.size(); }

  /// Checkpoint image: the raw slot array verbatim, so a restored set is
  /// structurally indistinguishable from the original (DESIGN.md §14).
  void save_state(StateWriter& w) const {
    w.vec(slots_);
    w.u64(size_);
    w.u8(has_empty_key_ ? 1 : 0);
  }
  /// Restores a save_state image; false (set unusable until reassigned)
  /// when the payload is short or violates the structural invariants.
  bool load_state(StateReader& r) {
    if (!r.vec(&slots_)) return false;
    size_ = static_cast<std::size_t>(r.u64());
    has_empty_key_ = r.u8() != 0;
    if (!r.ok()) return false;
    if (slots_.empty() || (slots_.size() & (slots_.size() - 1)) != 0 ||
        size_ * 2 > slots_.size()) {
      return false;
    }
    mask_ = slots_.size() - 1;
    return true;
  }

 private:
  static constexpr std::uint64_t kEmpty = 0;

  /// Probes for the empty slot of a key known to be absent and claims it.
  std::uint64_t place(std::uint64_t key) {
    std::uint64_t slot = key & mask_;
    while (slots_[slot] != kEmpty) slot = (slot + 1) & mask_;
    slots_[slot] = key;
    return slot;
  }

  void grow() {
    std::vector<std::uint64_t> old;
    old.swap(slots_);
    slots_.assign(old.size() * 2, kEmpty);
    mask_ = slots_.size() - 1;
    for (const std::uint64_t key : old) {
      if (key != kEmpty) place(key);
    }
  }

  std::vector<std::uint64_t> slots_;
  std::uint64_t mask_ = 0;
  std::size_t size_ = 0;
  bool has_empty_key_ = false;
};

}  // namespace spider
