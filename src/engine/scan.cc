#include "engine/scan.h"

#include <vector>

namespace spider {

void scan_table(const SnapshotTable& table,
                std::span<ScanKernel* const> kernels,
                const ScanOptions& options) {
  const std::size_t n = table.size();
  const std::size_t grain = options.grain == 0 ? kScanGrainRows : options.grain;
  const std::size_t chunks = (n + grain - 1) / grain;

  std::vector<std::vector<std::unique_ptr<ScanChunkState>>> states;
  states.reserve(kernels.size());
  for (ScanKernel* kernel : kernels) {
    std::vector<std::unique_ptr<ScanChunkState>> list;
    list.reserve(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      list.push_back(kernel->make_chunk_state());
    }
    states.push_back(std::move(list));
  }

  if (chunks > 0) {
    parallel_for_chunked(
        n, grain,
        [&](std::size_t begin, std::size_t end) {
          const std::size_t chunk = begin / grain;
          for (std::size_t k = 0; k < kernels.size(); ++k) {
            kernels[k]->observe_chunk(states[k][chunk].get(), table, begin,
                                      end);
          }
        },
        options.pool);
  }

  // Serial, chunk-ordered merges — the determinism point of the design.
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    kernels[k]->merge_chunks(table, states[k], options.pool);
  }
}

}  // namespace spider
