#include "engine/scan.h"

#include <vector>

namespace spider {

namespace {

/// Carves one staged batch into grain-sized chunks, appends fresh chunk
/// states for each kernel (serially, in chunk order), and scans the
/// chunks in parallel. Shared by the resident and streaming entry points
/// so the two produce identical chunk layouts for identical row spans.
void scan_batch(const SnapshotTable& table, std::size_t base,
                std::span<ScanKernel* const> kernels, std::size_t grain,
                ThreadPool* pool,
                std::vector<std::vector<std::unique_ptr<ScanChunkState>>>*
                    states) {
  const std::size_t n = table.size();
  const std::size_t chunks = (n + grain - 1) / grain;
  if (chunks == 0) return;
  const std::size_t chunk0 = (*states)[0].size();
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    (*states)[k].reserve(chunk0 + chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
      (*states)[k].push_back(kernels[k]->make_chunk_state());
    }
  }
  parallel_for_chunked(
      n, grain,
      [&](std::size_t begin, std::size_t end) {
        const std::size_t chunk = chunk0 + begin / grain;
        ScanMorsel m;
        m.table = &table;
        m.begin = base + begin;
        m.end = base + end;
        m.base = base;
        for (std::size_t k = 0; k < kernels.size(); ++k) {
          kernels[k]->observe_chunk((*states)[k][chunk].get(), m);
        }
      },
      pool);
}

}  // namespace

void scan_table(const SnapshotTable& table,
                std::span<ScanKernel* const> kernels,
                const ScanOptions& options) {
  const std::size_t grain = options.grain == 0 ? kScanGrainRows : options.grain;
  std::vector<std::vector<std::unique_ptr<ScanChunkState>>> states(
      kernels.size());
  if (!kernels.empty()) {
    scan_batch(table, /*base=*/0, kernels, grain, options.pool, &states);
  }
  // Serial, chunk-ordered merges — the determinism point of the design.
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    kernels[k]->merge_chunks(states[k], options.pool);
  }
}

Status scan_stream(MorselSource& source, std::span<ScanKernel* const> kernels,
                   const ScanOptions& options) {
  const std::size_t grain = options.grain == 0 ? kScanGrainRows : options.grain;
  std::vector<std::vector<std::unique_ptr<ScanChunkState>>> states(
      kernels.size());
  while (true) {
    MorselBatch batch;
    Status s = source.next(&batch);
    if (!s.ok()) return s;
    if (batch.table == nullptr) break;
    if (!kernels.empty()) {
      scan_batch(*batch.table, batch.base, kernels, grain, options.pool,
                 &states);
    }
  }
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    kernels[k]->merge_chunks(states[k], options.pool);
  }
  return Status();
}

}  // namespace spider
