// Adjacent-snapshot diff: the paper's Figure 13 classifier.
//
// Two weekly snapshots are joined on path (regular files only). Rows of the
// current week are classified against the previous week:
//   new       — path absent last week
//   readonly  — present; only atime changed
//   updated   — present; mtime and/or ctime changed
//   untouched — present; all three timestamps identical
// and rows of the previous week absent now are `deleted`. The percentages
// reported by the study follow the paper's convention: deleted, readonly,
// updated, untouched are fractions of the previous week's file count; new
// is a fraction of the current week's.
#pragma once

#include <cstdint>
#include <vector>

#include "snapshot/table.h"

namespace spider {

enum class AccessClass : std::uint8_t {
  kNew = 0,
  kDeleted = 1,
  kReadonly = 2,
  kUpdated = 3,
  kUntouched = 4,
};

struct DiffResult {
  // Rows in the *current* snapshot.
  std::vector<std::uint32_t> new_rows;
  std::vector<std::uint32_t> readonly_rows;
  std::vector<std::uint32_t> updated_rows;
  std::vector<std::uint32_t> untouched_rows;
  // Rows in the *previous* snapshot.
  std::vector<std::uint32_t> deleted_rows;

  std::size_t prev_files = 0;  // regular files in previous snapshot
  std::size_t cur_files = 0;   // regular files in current snapshot

  double deleted_fraction() const;
  double readonly_fraction() const;
  double updated_fraction() const;
  double untouched_fraction() const;
  double new_fraction() const;
};

/// Classifies regular files between two adjacent snapshots. The join probes
/// in parallel; outputs are in ascending row order (deterministic).
DiffResult diff_snapshots(const SnapshotTable& prev, const SnapshotTable& cur);

/// Sort-merge alternative to the hash join: both sides are sorted by
/// (path hash, row) and merged. Same result contract as diff_snapshots;
/// exists for the join-strategy ablation benchmark.
DiffResult diff_snapshots_sortmerge(const SnapshotTable& prev,
                                    const SnapshotTable& cur);

}  // namespace spider
