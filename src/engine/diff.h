// Adjacent-snapshot diff: the paper's Figure 13 classifier.
//
// Two weekly snapshots are joined on path (regular files only). Rows of the
// current week are classified against the previous week:
//   new       — path absent last week
//   readonly  — present; only atime changed
//   updated   — present; mtime and/or ctime changed
//   untouched — present; all three timestamps identical
// and rows of the previous week absent now are `deleted`. The percentages
// reported by the study follow the paper's convention: deleted, readonly,
// updated, untouched are fractions of the previous week's file count; new
// is a fraction of the current week's.
//
// Three join strategies share this contract (README "join strategies",
// DESIGN.md §11): a single hash index (the reference), sort-merge, and the
// radix-partitioned join. All produce byte-identical DiffResults at any
// thread count; bench/bench_diff.cpp measures them against each other.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "engine/hash_index.h"
#include "snapshot/table.h"
#include "util/parallel.h"

namespace spider {

enum class AccessClass : std::uint8_t {
  kNew = 0,
  kDeleted = 1,
  kReadonly = 2,
  kUpdated = 3,
  kUntouched = 4,
};

struct DiffResult {
  // Rows in the *current* snapshot.
  std::vector<std::uint32_t> new_rows;
  std::vector<std::uint32_t> readonly_rows;
  std::vector<std::uint32_t> updated_rows;
  std::vector<std::uint32_t> untouched_rows;
  // Rows in the *previous* snapshot.
  std::vector<std::uint32_t> deleted_rows;

  // Matched previous-week rows, index-parallel with readonly_rows /
  // updated_rows / untouched_rows. Filled only when DiffOptions::prev_rows
  // was requested — the incremental study (DESIGN.md §13) needs the
  // prev-side twin of every matched row to retire last week's
  // contribution.
  bool has_prev_rows = false;
  std::vector<std::uint32_t> readonly_prev_rows;
  std::vector<std::uint32_t> updated_prev_rows;
  std::vector<std::uint32_t> untouched_prev_rows;

  // Directory diff (DiffOptions::dirs). Directories never enter the file
  // classes or the fractions; "changed" means any of the three timestamps
  // differs (a superset of ownership changes, which move ctime).
  // changed_dir_prev_rows is index-parallel with changed_dir_rows.
  bool has_dir_diff = false;
  std::vector<std::uint32_t> new_dir_rows;          // cur rows
  std::vector<std::uint32_t> changed_dir_rows;      // cur rows
  std::vector<std::uint32_t> changed_dir_prev_rows; // prev rows
  std::vector<std::uint32_t> deleted_dir_rows;      // prev rows

  std::size_t prev_files = 0;  // regular files in previous snapshot
  std::size_t cur_files = 0;   // regular files in current snapshot

  double deleted_fraction() const;
  double readonly_fraction() const;
  double updated_fraction() const;
  double untouched_fraction() const;
  double new_fraction() const;
};

/// Optional diff outputs beyond the five file-row lists. Every strategy
/// honors both flags with identical results.
struct DiffOptions {
  /// Record the matched previous-week row alongside each readonly /
  /// updated / untouched current-week row.
  bool prev_rows = false;
  /// Also diff directory rows (new / changed / deleted directories).
  bool dirs = false;
};

/// Which join implementation computes the diff (CLI: snapshot_tool diff
/// --strategy; benchmarked by bench/bench_diff.cpp).
enum class DiffStrategy {
  kHash,
  kSortMerge,
  kPartitioned,
};

/// Per-phase wall-clock of one diff, for the strategy benchmark.
struct DiffBreakdown {
  double build_s = 0;  // index build / sort of the previous week
  double probe_s = 0;  // classify the current week against it
  double sweep_s = 0;  // splice partials + deleted sweep / final sorts
};

/// One scan chunk's classification of current-week rows, each list in
/// ascending row order. The concatenation across chunks (in chunk order)
/// of each class is globally ascending — the mechanism behind the
/// bit-identity of every strategy and of the fused kernel.
struct DiffChunkRows {
  static constexpr int kNew = 0;
  static constexpr int kReadonly = 1;
  static constexpr int kUpdated = 2;
  static constexpr int kUntouched = 3;
  std::vector<std::uint32_t> rows[4];

  /// Set before probing to also record each matched row's previous-week
  /// twin in prev_rows (index-parallel with rows; kNew stays empty).
  bool record_prev = false;
  std::vector<std::uint32_t> prev_rows[4];

  // Directory classification, filled only when the probe is handed a
  // DiffDirProbe. changed_dirs_prev is index-parallel with changed_dirs.
  std::vector<std::uint32_t> new_dirs;          // cur rows
  std::vector<std::uint32_t> changed_dirs;      // cur rows
  std::vector<std::uint32_t> changed_dirs_prev; // prev rows
};

/// Classifies regular files between two adjacent snapshots with the single
/// hash-index join. Probes in parallel on `pool` (null = global pool);
/// outputs are in ascending row order (deterministic).
DiffResult diff_snapshots(const SnapshotTable& prev, const SnapshotTable& cur,
                          ThreadPool* pool = nullptr,
                          DiffBreakdown* breakdown = nullptr,
                          const DiffOptions& options = {});

/// Sort-merge alternative to the hash join: both sides are sorted by
/// (path hash, path) and merged. Same result contract as diff_snapshots;
/// exists for the join-strategy ablation benchmark. Serial.
DiffResult diff_snapshots_sortmerge(const SnapshotTable& prev,
                                    const SnapshotTable& cur,
                                    DiffBreakdown* breakdown = nullptr,
                                    const DiffOptions& options = {});

/// The radix-partitioned join (DESIGN.md §11): build side partitioned once
/// by the top bits of the path hash, per-partition shards built fully in
/// parallel with no atomics, parallel probe, parallel deleted sweep.
/// Byte-identical to diff_snapshots at any thread count.
DiffResult diff_snapshots_partitioned(const SnapshotTable& prev,
                                      const SnapshotTable& cur,
                                      ThreadPool* pool = nullptr,
                                      DiffBreakdown* breakdown = nullptr,
                                      const DiffOptions& options = {});

/// Dispatches on `strategy` (kSortMerge ignores the pool).
DiffResult diff_snapshots_with(DiffStrategy strategy,
                               const SnapshotTable& prev,
                               const SnapshotTable& cur,
                               ThreadPool* pool = nullptr,
                               DiffBreakdown* breakdown = nullptr,
                               const DiffOptions& options = {});

// --- Fused-kernel building blocks -----------------------------------------
// The study runner computes the diff as a kernel on the shared weekly scan
// (study/runner.cc) instead of as a separate pass: each scan chunk probes
// its own rows via diff_probe_range, and the kernel's merge assembles the
// DiffResult via diff_finalize. Exposed here so the kernel, the standalone
// strategies, and the tests share one implementation.

/// Directory side of the probe (DiffOptions::dirs): an index over the
/// previous week's directory rows plus its match flags, one per indexed
/// directory (0 -> 1 transitions only; relaxed atomics suffice).
struct DiffDirProbe {
  const DetachedPathIndex* index = nullptr;
  std::atomic<std::uint8_t>* matched = nullptr;
};

/// Probes rows [begin, end) of `cur` against the partitioned index over
/// `prev`, appending each file row to the matching class list of `out` and
/// flagging matched build-side ordinals in `matched` (0 -> 1 transitions
/// only; relaxed atomics suffice). With out->record_prev set, the matched
/// classes also record the previous-week row; with `dirs`, directory rows
/// are classified against its index instead of being skipped. Safe to run
/// concurrently over disjoint ranges with distinct `out` states.
void diff_probe_range(const PartitionedPathIndex& index,
                      const SnapshotTable& prev, const SnapshotTable& cur,
                      std::size_t begin, std::size_t end,
                      std::atomic<std::uint8_t>* matched, DiffChunkRows* out,
                      const DiffDirProbe* dirs = nullptr);

/// Optional diff_finalize outputs matching DiffOptions: prev-row splicing
/// (the probes ran with record_prev) and the directory lists plus the
/// deleted-directory sweep of `prev_dir_rows` against `dir_matched`.
struct DiffFinalizeExtras {
  bool prev_rows = false;
  bool dirs = false;
  std::span<const std::uint32_t> prev_dir_rows;
  const std::atomic<std::uint8_t>* dir_matched = nullptr;
};

/// Splices per-chunk classifications (chunk order) into `out` and sweeps
/// the unmatched positions of `prev_file_rows` into deleted_rows, in
/// parallel. Fills the row lists only; the caller sets
/// prev_files/cur_files.
void diff_finalize(std::span<const std::uint32_t> prev_file_rows,
                   const std::atomic<std::uint8_t>* matched,
                   std::span<const DiffChunkRows* const> chunks,
                   ThreadPool* pool, DiffResult* out,
                   const DiffFinalizeExtras* extras = nullptr);

/// Ascending directory rows of `table` — the build side of the directory
/// diff, fed to DetachedPathIndex.
std::vector<std::uint32_t> dir_rows_of(const SnapshotTable& table);

}  // namespace spider
