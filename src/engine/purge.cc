#include "engine/purge.h"

#include <algorithm>
#include <ostream>

#include "snapshot/record.h"
#include "util/parallel.h"
#include "util/timeutil.h"

namespace spider {

PurgeReport build_purge_list(const SnapshotTable& table, std::int64_t now,
                             const PurgePolicy& policy) {
  PurgeReport report;
  const std::int64_t cutoff =
      now - static_cast<std::int64_t>(policy.age_days) * kSecondsPerDay;

  const auto exempt = [&policy](std::string_view project) {
    return std::find(policy.exempt_projects.begin(),
                     policy.exempt_projects.end(),
                     project) != policy.exempt_projects.end();
  };

  // Chunked parallel scan; partials merge in chunk order so the candidate
  // list is ascending and deterministic.
  struct Partial {
    std::vector<std::uint32_t> rows;
    std::uint64_t scanned = 0;
    std::uint64_t exempted = 0;
  };
  constexpr std::size_t kGrain = 8192;
  const std::size_t n = table.size();
  const std::size_t chunks = n == 0 ? 0 : (n + kGrain - 1) / kGrain;
  std::vector<Partial> partials(chunks);

  parallel_for_chunked(n, kGrain, [&](std::size_t begin, std::size_t end) {
    Partial& p = partials[begin / kGrain];
    for (std::size_t row = begin; row < end; ++row) {
      if (table.is_dir(row)) continue;
      ++p.scanned;
      if (table.atime(row) >= cutoff) continue;
      if (exempt(path_project(table.path(row)))) {
        ++p.exempted;
        continue;
      }
      p.rows.push_back(static_cast<std::uint32_t>(row));
    }
  });

  for (Partial& p : partials) {
    report.scanned_files += p.scanned;
    report.exempted_files += p.exempted;
    report.candidate_rows.insert(report.candidate_rows.end(), p.rows.begin(),
                                 p.rows.end());
  }
  for (const std::uint32_t row : report.candidate_rows) {
    ++report.by_project[std::string(path_project(table.path(row)))];
  }
  return report;
}

std::uint64_t write_purge_list(const SnapshotTable& table,
                               const PurgeReport& report, std::ostream& os) {
  std::uint64_t bytes = 0;
  for (const std::uint32_t row : report.candidate_rows) {
    const std::string_view path = table.path(row);
    os << path << '\n';
    bytes += path.size() + 1;
  }
  return bytes;
}

}  // namespace spider
