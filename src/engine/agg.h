// Grouped aggregation helpers: parallel hash-aggregation over snapshot rows
// (the engine's GROUP BY), count-map merging, and deterministic top-k.
//
// The pattern mirrors the paper's SparkSQL aggregations: each thread folds
// rows into a private hash map, partials merge in chunk order. Results are
// bit-identical run to run — important because the calibration tests assert
// on exact counts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/parallel.h"

namespace spider {

template <typename Key>
using CountMap = std::unordered_map<Key, std::uint64_t>;

template <typename Key>
void merge_counts(CountMap<Key>& into, const CountMap<Key>& from) {
  if (into.empty()) {
    into = from;
    return;
  }
  into.reserve(into.size() + from.size());
  for (const auto& [key, count] : from) into[key] += count;
}

/// Destructive merge for reduce trees: addition commutes, so when `from`
/// holds more groups than `into` we swap before folding — each key pair is
/// rehashed at most min(|into|, |from|) times instead of |from| times.
template <typename Key>
void merge_counts(CountMap<Key>& into, CountMap<Key>&& from) {
  if (from.size() > into.size()) into.swap(from);
  if (from.empty()) return;
  into.reserve(into.size() + from.size());
  for (auto it = from.begin(); it != from.end();) {
    auto node = from.extract(it++);
    auto res = into.insert(std::move(node));
    if (!res.inserted) res.position->second += res.node.mapped();
  }
}

/// Parallel grouped count over [0, n). `emit_keys(row, emit)` calls
/// emit(key, weight) zero or more times per row. One accumulator per pool
/// thread (not per chunk): hash-map partials are expensive to merge, so the
/// grain is sized to produce exactly pool-width chunks.
template <typename Key, typename EmitKeys>
CountMap<Key> parallel_count(std::size_t n, EmitKeys&& emit_keys,
                             std::size_t grain = 0) {
  if (grain == 0 && n > 0) {
    const std::size_t width = std::max(1u, ThreadPool::global().size());
    grain = std::max<std::size_t>(kGrainMin, (n + width - 1) / width);
  }
  return parallel_reduce<CountMap<Key>>(
      n, CountMap<Key>{},
      [&emit_keys](CountMap<Key>& acc, std::size_t row) {
        emit_keys(row, [&acc](const Key& key, std::uint64_t weight) {
          acc[key] += weight;
        });
      },
      [](CountMap<Key>& into, CountMap<Key>& from) {
        merge_counts(into, std::move(from));
      },
      nullptr, grain);
}

/// Largest-count-first top-k; ties break on key order so output is stable.
template <typename Key>
std::vector<std::pair<Key, std::uint64_t>> top_k(const CountMap<Key>& counts,
                                                 std::size_t k) {
  std::vector<std::pair<Key, std::uint64_t>> entries(counts.begin(),
                                                     counts.end());
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

/// Sum of all counts in a map.
template <typename Key>
std::uint64_t total_count(const CountMap<Key>& counts) {
  std::uint64_t total = 0;
  for (const auto& [key, count] : counts) total += count;
  return total;
}

}  // namespace spider
