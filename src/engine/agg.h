// Grouped aggregation helpers: parallel hash-aggregation over snapshot rows
// (the engine's GROUP BY), count-map merging, and deterministic top-k.
//
// The pattern mirrors the paper's SparkSQL aggregations: each thread folds
// rows into a private hash map, partials merge in chunk order. Results are
// bit-identical run to run — important because the calibration tests assert
// on exact counts.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/parallel.h"

namespace spider {

template <typename Key>
using CountMap = std::unordered_map<Key, std::uint64_t>;

template <typename Key>
void merge_counts(CountMap<Key>& into, const CountMap<Key>& from) {
  for (const auto& [key, count] : from) into[key] += count;
}

/// Parallel grouped count over [0, n). `emit_keys(row, emit)` calls
/// emit(key, weight) zero or more times per row.
template <typename Key, typename EmitKeys>
CountMap<Key> parallel_count(std::size_t n, EmitKeys&& emit_keys,
                             std::size_t grain = 8192) {
  return parallel_reduce<CountMap<Key>>(
      n, CountMap<Key>{},
      [&emit_keys](CountMap<Key>& acc, std::size_t row) {
        emit_keys(row, [&acc](const Key& key, std::uint64_t weight) {
          acc[key] += weight;
        });
      },
      [](CountMap<Key>& into, CountMap<Key>& from) {
        merge_counts(into, from);
      },
      nullptr, grain);
}

/// Largest-count-first top-k; ties break on key order so output is stable.
template <typename Key>
std::vector<std::pair<Key, std::uint64_t>> top_k(const CountMap<Key>& counts,
                                                 std::size_t k) {
  std::vector<std::pair<Key, std::uint64_t>> entries(counts.begin(),
                                                     counts.end());
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

/// Sum of all counts in a map.
template <typename Key>
std::uint64_t total_count(const CountMap<Key>& counts) {
  std::uint64_t total = 0;
  for (const auto& [key, count] : counts) total += count;
  return total;
}

}  // namespace spider
