// Grouped aggregation helpers: parallel hash-aggregation over snapshot rows
// (the engine's GROUP BY), count-map merging, and deterministic top-k.
//
// The pattern mirrors the paper's SparkSQL aggregations: each thread folds
// rows into a private hash map, partials merge in chunk order. Results are
// bit-identical run to run — important because the calibration tests assert
// on exact counts.
//
// Two tiers (DESIGN.md §12):
//   * CountMap (std::unordered_map) — the reference tier, kept for generic
//     keys and as the serial baseline the tests diff against.
//   * FlatCountMap / StringDict (flat_map.h, dict.h) — the flat tier the
//     hot paths use: open-addressing tables for 64-bit keys, dictionary-
//     encoded string keys, and a radix-partitioned parallel merge
//     (engine/partition.h) for high-cardinality partials.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/dict.h"
#include "engine/flat_map.h"
#include "engine/partition.h"
#include "engine/u64set.h"
#include "util/parallel.h"

namespace spider {

template <typename Key>
using CountMap = std::unordered_map<Key, std::uint64_t>;

template <typename Key>
void merge_counts(CountMap<Key>& into, const CountMap<Key>& from) {
  if (into.empty()) {
    into = from;
    return;
  }
  // Reserve for the larger side only: overlapping key sets are the common
  // case (every chunk sees mostly the same extensions), so summing the
  // sizes routinely over-allocates 2x. The table still grows organically
  // when the key sets really are disjoint.
  into.reserve(std::max(into.size(), from.size()));
  for (const auto& [key, count] : from) into[key] += count;
}

/// Destructive merge for reduce trees: addition commutes, so when `from`
/// holds more groups than `into` we swap before folding — each key pair is
/// rehashed at most min(|into|, |from|) times instead of |from| times.
template <typename Key>
void merge_counts(CountMap<Key>& into, CountMap<Key>&& from) {
  if (from.size() > into.size()) into.swap(from);
  if (from.empty()) return;
  into.reserve(std::max(into.size(), from.size()));
  for (auto it = from.begin(); it != from.end();) {
    auto node = from.extract(it++);
    auto res = into.insert(std::move(node));
    if (!res.inserted) res.position->second += res.node.mapped();
  }
}

/// Parallel grouped count over [0, n). `emit_keys(row, emit)` calls
/// emit(key, weight) zero or more times per row. One accumulator per pool
/// thread (not per chunk): hash-map partials are expensive to merge, so the
/// grain is sized to produce exactly pool-width chunks.
template <typename Key, typename EmitKeys>
CountMap<Key> parallel_count(std::size_t n, EmitKeys&& emit_keys,
                             std::size_t grain = 0) {
  if (grain == 0 && n > 0) {
    const std::size_t width = std::max(1u, ThreadPool::global().size());
    grain = std::max<std::size_t>(kGrainMin, (n + width - 1) / width);
  }
  return parallel_reduce<CountMap<Key>>(
      n, CountMap<Key>{},
      [&emit_keys](CountMap<Key>& acc, std::size_t row) {
        emit_keys(row, [&acc](const Key& key, std::uint64_t weight) {
          acc[key] += weight;
        });
      },
      [](CountMap<Key>& into, CountMap<Key>& from) {
        merge_counts(into, std::move(from));
      },
      nullptr, grain);
}

/// Partial count maps below this many total entries merge serially; the
/// two radix passes only pay off once the merge is genuinely the tail.
inline constexpr std::size_t kPartitionedMergeMin = 1 << 14;

/// Radix-partitioned parallel merge of flat count-map partials
/// (DESIGN.md §12): flatten every partial's (key, count) entries, split by
/// the TOP key bits with engine/partition.h, accumulate each partition in
/// parallel (partitions are disjoint — no atomics), then splice the
/// partitions' unique keys serially into one table. The serial tail is
/// O(unique keys) cheap inserts instead of O(total entries) accumulating
/// probes. Layout is a pure function of the partials' contents, so results
/// iterate identically at every thread count.
template <typename KeyMix>
BasicFlatCountMap<KeyMix> merge_flat_counts_partitioned(
    std::vector<BasicFlatCountMap<KeyMix>>& partials,
    ThreadPool* pool = nullptr) {
  using Map = BasicFlatCountMap<KeyMix>;
  std::size_t total = 0;
  for (const Map& partial : partials) total += partial.size();

  if (partials.size() <= 1 || total < kPartitionedMergeMin) {
    Map result(total);
    for (const Map& partial : partials) merge_flat_counts(result, partial);
    return result;
  }

  // Flatten. Each partial writes its own contiguous slice.
  std::vector<std::uint64_t> keys(total), counts(total);
  std::vector<std::size_t> offsets(partials.size() + 1, 0);
  for (std::size_t p = 0; p < partials.size(); ++p) {
    offsets[p + 1] = offsets[p] + partials[p].size();
  }
  parallel_for(
      partials.size(),
      [&](std::size_t p) {
        std::size_t at = offsets[p];
        partials[p].for_each([&](std::uint64_t key, std::uint64_t count) {
          keys[at] = key;
          counts[at] = count;
          ++at;
        });
      },
      pool, /*grain=*/1);

  const std::uint32_t bits = radix_bits_for(total);
  const RadixPartitions parts = radix_partition(
      total, bits, [&](std::size_t i) { return KeyMix::mix(keys[i]); },
      [](std::size_t) { return true; }, pool);

  // Accumulate each partition privately, in parallel.
  std::vector<Map> per_part(parts.partition_count());
  parallel_for(
      parts.partition_count(),
      [&](std::size_t p) {
        const auto items = parts.partition_items(p);
        if (items.empty()) return;
        Map map(items.size());
        for (const std::uint32_t item : items) {
          map.add(keys[item], counts[item]);
        }
        per_part[p] = std::move(map);
      },
      pool, /*grain=*/1);

  std::size_t unique = 0;
  for (const Map& map : per_part) unique += map.size();
  Map result(unique);
  for (const Map& map : per_part) {
    map.for_each([&result](std::uint64_t key, std::uint64_t count) {
      result.slot(key) = count;  // partitions are disjoint: plain store
    });
  }
  return result;
}

/// Parallel grouped count into a flat table: per-chunk FlatCountMap
/// partials (pool-width chunks, like parallel_count) folded by the
/// radix-partitioned merge. Key 0 and duplicate-heavy streams are fine —
/// see flat_map.h.
template <typename KeyMix = IdentityKeyMix, typename EmitKeys>
BasicFlatCountMap<KeyMix> parallel_count_flat(std::size_t n,
                                              EmitKeys&& emit_keys,
                                              ThreadPool* pool = nullptr,
                                              std::size_t grain = 0) {
  using Map = BasicFlatCountMap<KeyMix>;
  if (n == 0) return Map();
  if (grain == 0) {
    ThreadPool& p = pool ? *pool : ThreadPool::global();
    const std::size_t width = std::max(1u, p.size());
    grain = std::max<std::size_t>(kGrainMin, (n + width - 1) / width);
  }
  const std::size_t chunks = (n + grain - 1) / grain;
  std::vector<Map> partials(chunks);
  parallel_for_chunked(
      n, grain,
      [&](std::size_t begin, std::size_t end) {
        Map& acc = partials[begin / grain];
        for (std::size_t row = begin; row < end; ++row) {
          emit_keys(row, [&acc](std::uint64_t key, std::uint64_t weight) {
            acc.add(key, weight);
          });
        }
      },
      pool);
  return merge_flat_counts_partitioned(partials, pool);
}

/// Distinct 64-bit keys sharded by the top key bits: the union of many key
/// spans built fully in parallel (one task per radix partition, no
/// atomics), for high-cardinality set merges — the census parent-directory
/// union is the canonical user. Keys must be well-mixed (path hashes);
/// partitioning uses the top bits, the per-shard U64Sets the low bits.
class PartitionedU64Set {
 public:
  /// Rebuilds the set as the union of all keys in `spans`.
  void build(std::span<const std::span<const std::uint64_t>> spans,
             ThreadPool* pool = nullptr) {
    std::size_t total = 0;
    std::vector<std::size_t> offsets(spans.size() + 1, 0);
    for (std::size_t i = 0; i < spans.size(); ++i) {
      offsets[i + 1] = offsets[i] + spans[i].size();
      total += spans[i].size();
    }
    parts_.clear();
    bits_ = radix_bits_for(total);
    if (total == 0) return;

    std::vector<std::uint64_t> flat(total);
    parallel_for(
        spans.size(),
        [&](std::size_t i) {
          std::copy(spans[i].begin(), spans[i].end(),
                    flat.begin() + static_cast<std::ptrdiff_t>(offsets[i]));
        },
        pool, /*grain=*/1);

    const RadixPartitions parts = radix_partition(
        total, bits_, [&](std::size_t i) { return flat[i]; },
        [](std::size_t) { return true; }, pool);

    parts_.resize(parts.partition_count());
    parallel_for(
        parts.partition_count(),
        [&](std::size_t p) {
          const auto keys = parts.partition_keys(p);
          U64Set set(keys.size());
          for (const std::uint64_t key : keys) set.insert(key);
          parts_[p] = std::move(set);
        },
        pool, /*grain=*/1);
  }

  bool contains(std::uint64_t key) const {
    if (parts_.empty()) return false;
    return parts_[RadixPartitions::partition_of(key, bits_)].contains(key);
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const U64Set& part : parts_) total += part.size();
    return total;
  }

 private:
  std::uint32_t bits_ = 0;
  std::vector<U64Set> parts_;
};

/// Largest-count-first top-k; ties break on key order so output is stable.
template <typename Key>
std::vector<std::pair<Key, std::uint64_t>> top_k(const CountMap<Key>& counts,
                                                 std::size_t k) {
  std::vector<std::pair<Key, std::uint64_t>> entries(counts.begin(),
                                                     counts.end());
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

/// Top-k over dictionary-encoded counts (`counts[id]` for ids of `dict`);
/// ties break on the interned NAME — not the id — so the ranking is
/// independent of intern order and matches the string-keyed top_k exactly.
/// Returns (id, count) pairs.
inline std::vector<std::pair<std::uint32_t, std::uint64_t>> top_k_dict(
    const std::vector<std::uint64_t>& counts, const StringDict& dict,
    std::size_t k) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> entries;
  for (std::uint32_t id = 0; id < counts.size() && id < dict.size(); ++id) {
    if (counts[id] > 0) entries.emplace_back(id, counts[id]);
  }
  std::sort(entries.begin(), entries.end(),
            [&dict](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return dict.name(a.first) < dict.name(b.first);
            });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

/// Sum of all counts in a map.
template <typename Key>
std::uint64_t total_count(const CountMap<Key>& counts) {
  std::uint64_t total = 0;
  for (const auto& [key, count] : counts) total += count;
  return total;
}

template <typename KeyMix>
std::uint64_t total_count(const BasicFlatCountMap<KeyMix>& counts) {
  std::uint64_t total = 0;
  counts.for_each(
      [&total](std::uint64_t, std::uint64_t count) { total += count; });
  return total;
}

}  // namespace spider
