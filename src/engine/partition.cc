#include "engine/partition.h"

namespace spider {

std::uint32_t radix_bits_for(std::size_t n) {
  std::uint32_t bits = 1;
  while (bits < 10 && (n >> bits) > 4096) ++bits;
  return bits;
}

RadixPartitions radix_partition_files(const SnapshotTable& table,
                                      std::uint32_t bits, ThreadPool* pool) {
  return radix_partition(
      table.size(), bits,
      [&table](std::size_t i) { return table.path_hash(i); },
      [&table](std::size_t i) { return !table.is_dir(i); }, pool);
}

}  // namespace spider
