// String dictionary for dictionary-encoded GROUP BY keys: interns each
// distinct string once and hands out dense u32 ids, so per-row aggregation
// becomes an array increment instead of a heap-allocating
// unordered_map<std::string> probe.
//
// The index is a flat open-addressing table of (hash, id) pairs over the
// interned strings. Probes compare the stored 64-bit hash first and the
// actual bytes second, so full hash collisions degrade to an extra probe —
// never to a false merge. Growth follows the probe-before-grow discipline
// of flat_map.h: re-interning a string that is already present can never
// trigger a resize.
//
// Determinism: ids are assigned in first-intern order, so a dictionary
// built by the study's ordered chunk merge assigns the same ids at every
// thread count (the chunk layout is a pure function of the row count).
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/hash.h"
#include "util/serialize.h"

namespace spider {

class StringDict {
 public:
  explicit StringDict(std::size_t expected = 0) {
    if (expected > 0) allocate(capacity_for(expected));
  }

  /// Returns the id of `s`, interning it on first sight. Ids are dense:
  /// the n-th distinct string gets id n-1.
  std::uint32_t intern(std::string_view s) {
    return intern_hashed(hash_bytes(s), s);
  }

  /// Pre-hashed intern. Public so callers that already hold the hash skip
  /// re-hashing — and so tests can force full 64-bit collisions to
  /// exercise the byte-comparison fallback.
  std::uint32_t intern_hashed(std::uint64_t hash, std::string_view s) {
    if (slots_.empty()) allocate(kMinCapacity);
    std::uint64_t slot = hash & mask_;
    for (;;) {
      const Slot& sl = slots_[slot];
      if (sl.id == kEmptySlot) break;
      if (sl.hash == hash && names_[sl.id] == s) return sl.id;
      slot = (slot + 1) & mask_;
    }
    // Genuine insert: grow if the new occupancy would cross 1/2 load.
    if ((names_.size() + 1) * 2 > slots_.size()) {
      grow();
      slot = hash & mask_;
      while (slots_[slot].id != kEmptySlot) slot = (slot + 1) & mask_;
    }
    const std::uint32_t id = static_cast<std::uint32_t>(names_.size());
    slots_[slot] = Slot{hash, id};
    names_.emplace_back(s);
    return id;
  }

  /// Id of `s`, or -1 when it was never interned.
  std::int64_t find(std::string_view s) const {
    if (slots_.empty()) return -1;
    const std::uint64_t hash = hash_bytes(s);
    std::uint64_t slot = hash & mask_;
    for (;;) {
      const Slot& sl = slots_[slot];
      if (sl.id == kEmptySlot) return -1;
      if (sl.hash == hash && names_[sl.id] == s) return sl.id;
      slot = (slot + 1) & mask_;
    }
  }

  std::string_view name(std::uint32_t id) const { return names_[id]; }
  std::uint32_t size() const {
    return static_cast<std::uint32_t>(names_.size());
  }
  bool empty() const { return names_.empty(); }
  std::size_t capacity() const { return slots_.size(); }

  /// Checkpoint image: the interned strings in id order. The probe table
  /// is a pure function of the intern sequence, so load_state re-interns
  /// in order and reproduces every id (and the layout) exactly.
  void save_state(StateWriter& w) const {
    w.u64(names_.size());
    for (const std::string& s : names_) w.str(s);
  }
  bool load_state(StateReader& r) {
    slots_.clear();
    mask_ = 0;
    names_.clear();
    const std::uint64_t n = r.u64();
    if (!r.ok()) return false;
    if (n > 0) allocate(capacity_for(static_cast<std::size_t>(n)));
    std::string s;
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!r.str(&s)) return false;
      intern(s);
    }
    return names_.size() == n;
  }

 private:
  static constexpr std::uint32_t kEmptySlot = 0xffff'ffffu;
  static constexpr std::size_t kMinCapacity = 16;

  /// Hash and id interleaved so a probe touches one cache line, not two
  /// parallel arrays.
  struct Slot {
    std::uint64_t hash = 0;          // hash of names_[id]
    std::uint32_t id = kEmptySlot;   // index into names_, kEmptySlot = free
  };

  static std::size_t capacity_for(std::size_t expected) {
    return std::bit_ceil(std::max<std::size_t>(expected * 2, kMinCapacity));
  }

  void allocate(std::size_t capacity) {
    slots_.assign(capacity, Slot{});
    mask_ = capacity - 1;
  }

  void grow() {
    std::vector<Slot> old;
    old.swap(slots_);
    allocate(old.size() * 2);
    for (const Slot& sl : old) {
      if (sl.id == kEmptySlot) continue;
      std::uint64_t slot = sl.hash & mask_;
      while (slots_[slot].id != kEmptySlot) slot = (slot + 1) & mask_;
      slots_[slot] = sl;
    }
  }

  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;
  std::vector<std::string> names_;  // id -> string, first-intern order
};

}  // namespace spider
