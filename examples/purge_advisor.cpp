// Purge-policy advisor: the operational scenario behind the paper's
// Observation 8 ("many files are repeatedly accessed beyond the 90 day
// purge window"). Sweeps candidate purge windows over the simulated
// facility and recommends the smallest window that keeps re-read data from
// being evicted, quantifying the archive-traffic cost of each policy.
//
//   ./examples/purge_advisor [--scale=1e-4] [--weeks=60]
#include <algorithm>
#include <iostream>
#include <vector>

#include "study/access_patterns.h"
#include "study/file_age.h"
#include "study/growth.h"
#include "study/runner.h"
#include "synth/generator.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace spider;
  const CliArgs args(argc, argv);

  FacilityConfig base;
  base.scale = args.get_double("scale", 1e-4);
  base.weeks = static_cast<std::size_t>(args.get_int("weeks", 60));
  base.seed = static_cast<std::uint64_t>(args.get_int("seed", 20150105));

  struct Row {
    int window;
    double median_age;
    double above;
    std::uint64_t final_files;
    double deleted_pct;
  };
  std::vector<Row> rows;

  std::cout << "Sweeping purge windows over " << base.weeks
            << " simulated weeks (scale " << base.scale << ")...\n\n";
  for (const int window : {45, 60, 90, 120, 150, 180}) {
    FacilityConfig config = base;
    config.purge_days = window;
    FacilityGenerator generator(config);

    FileAgeAnalyzer ages(window);
    GrowthAnalyzer growth;
    AccessPatternsAnalyzer access;
    StudyAnalyzer* analyzers[] = {&ages, &growth, &access};
    run_study(generator, analyzers);

    rows.push_back(Row{window, ages.result().median_of_averages,
                       ages.result().fraction_above_purge,
                       growth.result().points.back().files,
                       access.result().avg_deleted});
  }

  AsciiTable t({"window (days)", "median avg age", "snapshots above window",
                "final live files", "weekly deleted"});
  for (const Row& row : rows) {
    t.add_row({std::to_string(row.window), format_double(row.median_age, 0),
               format_percent(row.above),
               format_with_commas(row.final_files),
               format_percent(row.deleted_pct)});
  }
  t.print(std::cout);

  // Recommendation: the smallest window where loosening it further stops
  // recovering meaningful standing population (diminishing returns).
  int recommended = rows.back().window;
  for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
    const double gain = static_cast<double>(rows[i + 1].final_files) /
                        static_cast<double>(std::max<std::uint64_t>(
                            1, rows[i].final_files));
    if (gain < 1.02) {
      recommended = rows[i].window;
      break;
    }
  }
  std::cout << "\nRecommendation: a " << recommended
            << "-day purge window. The paper reached the same qualitative "
               "conclusion for Spider II: file ages (atime - mtime) sit "
               "well above 90 days, so the default window evicts data that "
               "users still read.\n";
  return 0;
}
