// Quickstart: simulate a small synthetic Spider II facility, run the whole
// metadata study in one streaming pass, and print the headline findings.
//
//   ./examples/quickstart [--scale=1e-4] [--weeks=40] [--seed=42]
//
// This is the five-minute tour of the public API:
//   FacilityGenerator (synthetic LustreDU snapshots)
//     -> Resolver (accounts join)
//     -> FullStudy (every analyzer, one pass)
//     -> render*() reports.
#include <iostream>

#include "study/full_study.h"
#include "synth/generator.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace spider;
  const CliArgs args(argc, argv);

  FacilityConfig config;
  config.scale = args.get_double("scale", 1e-4);
  config.weeks = static_cast<std::size_t>(args.get_int("weeks", 40));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  std::cout << "Simulating " << config.weeks
            << " weeks of facility activity at scale " << config.scale
            << " (users/projects full-scale)...\n\n";

  FacilityGenerator generator(config);
  Resolver resolver(generator.plan());
  FullStudy study(resolver, /*burst_min_files=*/10);
  study.run(generator);

  std::cout << "---- who uses the file system " << "----\n"
            << study.user_profile.render() << "\n";
  std::cout << "---- how the namespace grows ----\n"
            << study.growth.render() << "\n";
  std::cout << "---- weekly access behaviour ----\n"
            << study.access_patterns.render() << "\n";
  std::cout << "---- how long data stays useful ----\n"
            << study.file_age.render() << "\n";
  std::cout << "---- who works with whom ----\n"
            << study.collaboration.render() << "\n";
  std::cout << "Run the bench_* binaries for every paper table and figure, "
               "or try the other examples (purge_advisor, "
               "collaboration_explorer, snapshot_tool).\n";
  return 0;
}
