# Smoke pipeline: generate -> inspect -> convert both ways -> purgelist ->
# analyze_series over the generated directory. Any nonzero exit fails the
# test.
file(REMOVE_RECURSE ${WORKDIR})
file(MAKE_DIRECTORY ${WORKDIR})

function(run)
  execute_process(COMMAND ${ARGV} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGV}")
  endif()
endfunction()

run(${TOOL} generate --dir=${WORKDIR}/series --scale=1e-5 --weeks=6)
file(GLOB snaps ${WORKDIR}/series/snap_*.scol)
list(LENGTH snaps count)
if(count EQUAL 0)
  message(FATAL_ERROR "no snapshots generated")
endif()
list(GET snaps 0 first)

run(${TOOL} inspect --in=${first})
run(${TOOL} stat --in=${first})
run(${TOOL} convert --in=${first} --out=${WORKDIR}/snap.psv)
run(${TOOL} convert --in=${WORKDIR}/snap.psv --out=${WORKDIR}/snap.scol)
run(${TOOL} purgelist --in=${first} --age=60 --out=${WORKDIR}/purge.list)
list(LENGTH snaps count)
if(count GREATER 1)
  list(GET snaps 1 second)
  run(${TOOL} diff ${first} ${second})
  run(${TOOL} diff ${first} ${second} --strategy=hash)
  run(${TOOL} diff ${first} ${second} --strategy=sortmerge)
endif()
run(${ANALYZE} --dir=${WORKDIR}/series --report=census)

# Checkpointed run, then offline checkpoint inspection (OK sections,
# exit 0). FullStudy never resumes (scan-only analyzers record
# re-baseline markers) but the .sckpt must still verify clean.
run(${ANALYZE} --dir=${WORKDIR}/series --report=census
    --checkpoint=${WORKDIR}/study.sckpt)
run(${TOOL} checkpoint --in=${WORKDIR}/study.sckpt)

file(REMOVE_RECURSE ${WORKDIR})
