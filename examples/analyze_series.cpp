// analyze_series: the production entry point — run the whole study on a
// directory of snap_YYYYMMDD.scol snapshots, exactly what an HPC center
// would point at its own LustreDU collection. The account structure is
// inferred from the snapshots (synth/infer.h); no generator involved.
//
//   ./examples/snapshot_tool generate --dir=/tmp/series --weeks=20
//   ./examples/analyze_series --dir=/tmp/series
//
// Flags: --dir=<snapshot directory>  --min-burst-files=<n, default 10>
//        --report=<all|table1|users|census|access|age|network|collab>
//        --salvage=<skip|quarantine>  (decode damaged weeks' surviving
//        row groups instead of turning the whole week into a gap)
//        --incremental  (delta-driven analyzers; see DESIGN.md §13)
//        --checkpoint=<path>  (write a .sckpt after each analyzed week;
//        implies --incremental; inspect with `snapshot_tool checkpoint`)
//        --retry=<n>  (retry transient snapshot read errors up to n
//        attempts with jittered exponential backoff before recording
//        the week as a gap)
//
// A damaged series (missing or corrupt weeks) does not abort the study:
// the affected weeks become gaps, diff-based figures skip the gap-adjacent
// pairs, and the report ends with a data-quality section listing every gap
// and its reason.
#include <iostream>

#include "study/full_study.h"
#include "synth/infer.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  using namespace spider;
  const CliArgs args(argc, argv);
  const std::string dir = args.get("dir", "");
  if (dir.empty()) {
    std::cerr << "usage: analyze_series --dir=<snapshot directory> "
                 "[--report=all] [--min-burst-files=10]\n";
    return 1;
  }

  DirectorySeries series;
  std::string error;
  if (!series.open(dir, &error)) {
    std::cerr << "cannot open series: " << error << "\n";
    return 1;
  }
  const std::string salvage = args.get("salvage", "");
  if (salvage == "skip" || salvage == "quarantine") {
    ScolOptions options;
    options.on_corrupt_group = salvage == "skip"
                                   ? CorruptGroupPolicy::kSkip
                                   : CorruptGroupPolicy::kQuarantine;
    series.set_scol_options(options);
  } else if (!salvage.empty()) {
    std::cerr << "bad --salvage value (want skip|quarantine)\n";
    return 1;
  }
  const long retry_attempts = args.get_int("retry", 1);
  if (retry_attempts > 1) {
    RetryPolicy policy;
    policy.max_attempts = static_cast<std::size_t>(retry_attempts);
    series.set_retry_policy(policy);
  }
  std::cout << "found " << series.count() << " snapshots in " << dir;
  if (!series.gaps().empty()) {
    std::cout << " (" << series.gaps().size()
              << " gap(s) already visible in the timeline)";
  }
  std::cout << "\n";

  InferenceStats stats;
  const FacilityPlan plan = infer_facility(series, &stats);
  std::cout << "inferred " << stats.users << " users, " << stats.projects
            << " projects, " << stats.memberships << " memberships ("
            << stats.unmatched_projects
            << " projects without a recognizable domain tag)\n\n";

  Resolver resolver(plan);
  FullStudy study(resolver, static_cast<std::size_t>(
                                args.get_int("min-burst-files", 10)));
  StudyOptions options;
  options.checkpoint.path = args.get("checkpoint", "");
  options.incremental =
      args.get_bool("incremental", false) || !options.checkpoint.path.empty();
  CheckpointReport ckpt_report;
  options.checkpoint_report = &ckpt_report;
  study.run(series, options);
  if (!options.checkpoint.path.empty()) {
    std::cout << "checkpoint: " << ckpt_report.checkpoints_written
              << " written to " << options.checkpoint.path;
    if (ckpt_report.resumed) {
      std::cout << " (resumed after week " << ckpt_report.resumed_week << ")";
    } else if (!ckpt_report.rebaseline_reason.empty()) {
      std::cout << " (full run: " << ckpt_report.rebaseline_reason << ")";
    }
    std::cout << "\n\n";
  }

  const std::string report = args.get("report", "all");
  const bool all = report == "all";
  if (all || report == "table1") std::cout << study.render_table1() << "\n";
  if (all || report == "users") std::cout << study.user_profile.render() << "\n";
  if (all || report == "census") std::cout << study.census.render() << "\n";
  if (all || report == "access") {
    std::cout << study.access_patterns.render() << "\n"
              << study.growth.render() << "\n";
  }
  if (all || report == "age") std::cout << study.file_age.render() << "\n";
  if (all || report == "network") std::cout << study.network.render() << "\n";
  if (all || report == "collab") {
    std::cout << study.collaboration.render() << "\n";
  }
  std::cout << study.render_data_quality();
  return 0;
}
