// Collaboration explorer: interactive-style tour of the file-generation
// network (paper §4.3) — communities, hubs, and how far apart two science
// projects sit. The kind of question the paper's discussion says centers
// can answer from metadata alone: "who should we introduce to whom?"
//
//   ./examples/collaboration_explorer [--scale=1e-4] [--weeks=30]
//                                     [--from=cli101] [--to=nph103]
#include <iostream>

#include "graph/metrics.h"
#include "study/network.h"
#include "study/participation.h"
#include "synth/generator.h"
#include "util/cli.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace spider;
  const CliArgs args(argc, argv);

  FacilityConfig config;
  config.scale = args.get_double("scale", 1e-4);
  config.weeks = static_cast<std::size_t>(args.get_int("weeks", 30));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 20150105));

  FacilityGenerator generator(config);
  Resolver resolver(generator.plan());
  ParticipationAnalyzer participation(resolver);
  NetworkAnalyzer network(resolver, participation);
  StudyAnalyzer* analyzers[] = {&participation, &network};
  run_study(generator, analyzers);

  std::cout << network.render() << "\n";

  // Hubs: the most-connected users and projects.
  const auto& plan = resolver.plan();
  const BipartiteGraph graph(
      static_cast<std::uint32_t>(plan.users.size()),
      static_cast<std::uint32_t>(plan.projects.size()),
      participation.result().observed);

  struct Hub {
    VertexId vertex;
    std::uint32_t degree;
  };
  std::vector<Hub> hubs;
  for (std::size_t v = 0; v < graph.graph().vertex_count(); ++v) {
    hubs.push_back(Hub{static_cast<VertexId>(v),
                       graph.graph().degree(static_cast<VertexId>(v))});
  }
  std::sort(hubs.begin(), hubs.end(),
            [](const Hub& a, const Hub& b) { return a.degree > b.degree; });

  std::cout << "most connected entities (network hubs):\n";
  AsciiTable t({"entity", "kind", "domain", "connections"});
  for (std::size_t i = 0; i < 10 && i < hubs.size(); ++i) {
    const VertexId v = hubs[i].vertex;
    if (graph.is_project_vertex(v)) {
      const ProjectInfo& p = plan.projects[graph.project_of_vertex(v)];
      t.add_row({p.name, "project",
                 domain_profiles()[static_cast<std::size_t>(p.domain)].id,
                 std::to_string(hubs[i].degree)});
    } else {
      const UserAccount& u = plan.users[v];
      t.add_row({u.name, "user",
                 domain_profiles()[static_cast<std::size_t>(u.primary_domain)]
                     .id,
                 std::to_string(hubs[i].degree)});
    }
  }
  t.print(std::cout);

  // How far apart are two projects?
  const std::string from = args.get("from", "cli101");
  const std::string to = args.get("to", "nph101");
  const int from_p = plan.project_index(from);
  const int to_p = plan.project_index(to);
  if (from_p < 0 || to_p < 0) {
    std::cout << "\nunknown project name (--from/--to); try e.g. cli101\n";
    return 1;
  }
  const auto dist = bfs_distances(
      graph.graph(), graph.project_vertex(static_cast<std::uint32_t>(from_p)));
  const std::uint32_t hops =
      dist[graph.project_vertex(static_cast<std::uint32_t>(to_p))];
  std::cout << "\nhops between " << from << " and " << to << ": ";
  if (hops == kUnreachable) {
    std::cout << "not connected — these communities share no users.\n";
  } else {
    std::cout << hops << " (every second hop is a shared user)\n";
  }
  return 0;
}
