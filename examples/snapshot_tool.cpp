// snapshot_tool: the format-facing CLI. Generates a snapshot series onto
// disk, converts between LustreDU PSV text and the .scol columnar format,
// and inspects snapshot files — the day-to-day plumbing of the paper's
// analysis framework (§3).
//
//   snapshot_tool generate --dir=/tmp/series [--scale=2e-5] [--weeks=12]
//   snapshot_tool convert --in=snap.psv --out=snap.scol   (or the reverse)
//   snapshot_tool inspect --in=snap.scol
//   snapshot_tool stat --in=snap.scol     (v2 row-group directory)
//   snapshot_tool purgelist --in=snap.scol [--age=90] [--exempt=cli104,...]
//                 [--out=purge.list] [--now=<epoch>]
//   snapshot_tool verify --dir=/tmp/series   (or --in=snap.scol)
//   snapshot_tool checkpoint --in=study.sckpt
//   snapshot_tool diff <prev.scol> <cur.scol>
//                 [--strategy=hash|sortmerge|partitioned]
//
// Salvage flags (convert/inspect/purgelist): --salvage=skip|quarantine
// decodes damaged .scol files by dropping corrupt row groups;
// --max-bad-lines=<n> lets PSV ingest skip up to n malformed lines.
// `verify` walks a series directory, re-validates every row group
// checksum, prints a per-file OK/damage summary, and exits nonzero when
// any file is damaged. `checkpoint` does the same for a study runner
// .sckpt checkpoint (DESIGN.md §14): one OK/CORRUPT/VERSION-SKEW line per
// section, nonzero exit when any section is damaged.
#include <filesystem>
#include <iostream>
#include <string>

#include <algorithm>
#include <fstream>

#include "engine/agg.h"
#include "engine/diff.h"
#include "engine/purge.h"
#include "snapshot/psv.h"
#include "snapshot/scol.h"
#include "snapshot/series.h"
#include "study/checkpoint.h"
#include "synth/generator.h"
#include "util/cli.h"
#include "util/io.h"
#include "util/table.h"
#include "util/timeutil.h"

namespace {

using namespace spider;

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Reads a snapshot honoring the salvage flags; prints loss accounting to
/// stderr when a damaged input was partially recovered.
bool load_any(const CliArgs& args, const std::string& file,
              SnapshotTable* table, std::string* error) {
  if (ends_with(file, ".psv")) {
    PsvOptions options;
    options.max_bad_lines =
        static_cast<std::size_t>(args.get_int("max-bad-lines", 0));
    PsvReadReport report;
    const Status s = read_psv_file(file, table, options, &report);
    if (!s.ok()) {
      if (error) *error = s.to_string();
      return false;
    }
    if (!report.clean()) std::cerr << file << ": " << report.summary() << "\n";
    return true;
  }
  ScolOptions options;
  const std::string salvage = args.get("salvage", "");
  if (salvage == "skip") {
    options.on_corrupt_group = CorruptGroupPolicy::kSkip;
  } else if (salvage == "quarantine") {
    options.on_corrupt_group = CorruptGroupPolicy::kQuarantine;
  } else if (!salvage.empty()) {
    if (error) *error = "bad --salvage value (want skip|quarantine)";
    return false;
  }
  SalvageReport report;
  const Status s = read_scol_file(file, table, options, &report);
  if (!s.ok()) {
    if (error) *error = s.to_string();
    return false;
  }
  if (!report.clean()) std::cerr << file << ": " << report.summary() << "\n";
  return true;
}

bool store_any(const SnapshotTable& table, const std::string& file,
               std::string* error) {
  if (ends_with(file, ".psv")) return write_psv_file(table, file, error);
  return write_scol_file(table, file, error);
}

int cmd_generate(const CliArgs& args) {
  FacilityConfig config;
  config.scale = args.get_double("scale", 2e-5);
  config.weeks = static_cast<std::size_t>(args.get_int("weeks", 12));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed", 20150105));
  const std::string dir = args.get("dir", "");
  if (dir.empty()) {
    std::cerr << "generate requires --dir=<output directory>\n";
    return 1;
  }
  FacilityGenerator generator(config);
  // Stream each week's rows straight into the encoder: peak memory is one
  // row group plus simulator state, so large --scale values stay feasible.
  const Status s = save_series_streamed(generator, dir);
  if (!s.ok()) {
    std::cerr << "failed: " << s.to_string() << "\n";
    return 1;
  }
  std::cout << "wrote " << generator.count() << " snapshots to " << dir
            << " (snap_YYYYMMDD.scol)\n";
  return 0;
}

int cmd_convert(const CliArgs& args) {
  const std::string in = args.get("in", "");
  const std::string out = args.get("out", "");
  if (in.empty() || out.empty()) {
    std::cerr << "convert requires --in=<file> and --out=<file> "
                 "(.psv or .scol by extension)\n";
    return 1;
  }
  SnapshotTable table;
  std::string error;
  if (!load_any(args, in, &table, &error)) {
    std::cerr << "read failed: " << error << "\n";
    return 1;
  }
  if (!store_any(table, out, &error)) {
    std::cerr << "write failed: " << error << "\n";
    return 1;
  }
  std::cout << "converted " << table.size() << " records: " << in << " -> "
            << out << "\n";
  return 0;
}

int cmd_inspect(const CliArgs& args) {
  const std::string in = args.get("in", "");
  if (in.empty()) {
    std::cerr << "inspect requires --in=<file>\n";
    return 1;
  }
  SnapshotTable table;
  std::string error;
  if (!load_any(args, in, &table, &error)) {
    std::cerr << "read failed: " << error << "\n";
    return 1;
  }
  std::cout << in << ": " << table.size() << " records ("
            << table.file_count() << " files, " << table.dir_count()
            << " dirs)\n";
  if (table.empty()) return 0;

  std::int64_t min_time = table.mtime(0), max_time = table.mtime(0);
  std::size_t max_depth = 0;
  CountMap<std::string> ext_counts, project_counts;
  for (std::size_t i = 0; i < table.size(); ++i) {
    min_time = std::min(min_time, table.mtime(i));
    max_time = std::max(max_time, table.mtime(i));
    max_depth = std::max<std::size_t>(max_depth, table.depth(i));
    if (!table.is_dir(i)) {
      ++ext_counts[std::string(path_extension(table.path(i)))];
    }
    ++project_counts[std::string(path_project(table.path(i)))];
  }
  std::cout << "mtimes span " << date_iso(min_time) << " .. "
            << date_iso(max_time) << "; deepest path " << max_depth
            << " components\n\n";

  std::cout << "top extensions ('' = none):\n";
  AsciiTable exts({"ext", "files"});
  for (const auto& [ext, count] : top_k(ext_counts, 10)) {
    exts.add_row({ext.empty() ? "(none)" : ext, format_with_commas(count)});
  }
  exts.print(std::cout);

  std::cout << "\nbusiest projects:\n";
  AsciiTable projects({"project", "entries"});
  for (const auto& [name, count] : top_k(project_counts, 10)) {
    projects.add_row({name, format_with_commas(count)});
  }
  projects.print(std::cout);
  return 0;
}

/// Prints the v2 group directory without decoding any rows: per group the
/// directory's row count and byte extent, plus the per-column block sizes
/// read from the column-set framing. This is the out-of-core planning
/// view — what the streaming study will touch group-at-a-time.
int cmd_stat(const CliArgs& args) {
  const std::string in = args.get("in", "");
  if (in.empty()) {
    std::cerr << "stat requires --in=<.scol file>\n";
    return 1;
  }
  std::vector<std::uint8_t> bytes;
  Status s = read_file(in, &bytes);
  if (!s.ok()) {
    std::cerr << "read failed: " << s.to_string() << "\n";
    return 1;
  }
  ScolV2Layout layout;
  s = parse_scol_v2_layout(bytes, &layout);
  if (!s.ok()) {
    std::cerr << in << ": not a readable v2 image: " << s.to_string() << "\n";
    return 1;
  }

  std::uint64_t payload = 0;
  for (const std::size_t len : layout.group_len) payload += len;
  std::cout << in << ": " << format_with_commas(layout.rows) << " rows in "
            << layout.group_rows.size() << " groups (group size "
            << format_with_commas(layout.group_size) << "); "
            << format_with_commas(layout.payload_start) << " header+directory"
            << " bytes, " << format_with_commas(payload) << " payload bytes\n";

  AsciiTable t({"group", "rows", "bytes", "paths", "atime", "ctime", "mtime",
                "uid", "gid", "mode", "inode", "ost"});
  ScolColumnSizes totals;
  bool framing_ok = true;
  for (std::size_t g = 0; g < layout.group_rows.size(); ++g) {
    if (layout.group_truncated[g]) {
      t.add_row({std::to_string(g), format_with_commas(layout.group_rows[g]),
                 "(truncated)", "-", "-", "-", "-", "-", "-", "-", "-", "-"});
      framing_ok = false;
      continue;
    }
    ScolColumnSizes sizes;
    const Status gs = scol_group_column_sizes(
        std::span<const std::uint8_t>(bytes).subspan(layout.group_begin[g],
                                                     layout.group_len[g]),
        &sizes);
    if (!gs.ok()) {
      t.add_row({std::to_string(g), format_with_commas(layout.group_rows[g]),
                 format_with_commas(layout.group_len[g]),
                 "(bad framing)", "-", "-", "-", "-", "-", "-", "-", "-"});
      framing_ok = false;
      continue;
    }
    t.add_row({std::to_string(g), format_with_commas(layout.group_rows[g]),
               format_with_commas(layout.group_len[g]),
               format_with_commas(sizes.paths), format_with_commas(sizes.atime),
               format_with_commas(sizes.ctime), format_with_commas(sizes.mtime),
               format_with_commas(sizes.uid), format_with_commas(sizes.gid),
               format_with_commas(sizes.mode), format_with_commas(sizes.inode),
               format_with_commas(sizes.ost)});
    totals.paths += sizes.paths;
    totals.atime += sizes.atime;
    totals.ctime += sizes.ctime;
    totals.mtime += sizes.mtime;
    totals.uid += sizes.uid;
    totals.gid += sizes.gid;
    totals.mode += sizes.mode;
    totals.inode += sizes.inode;
    totals.ost += sizes.ost;
    totals.total += sizes.total;
  }
  t.add_row({"total", format_with_commas(layout.rows),
             format_with_commas(payload), format_with_commas(totals.paths),
             format_with_commas(totals.atime), format_with_commas(totals.ctime),
             format_with_commas(totals.mtime), format_with_commas(totals.uid),
             format_with_commas(totals.gid), format_with_commas(totals.mode),
             format_with_commas(totals.inode), format_with_commas(totals.ost)});
  t.print(std::cout);
  return framing_ok ? 0 : 1;
}

int cmd_purgelist(const CliArgs& args) {
  const std::string in = args.get("in", "");
  if (in.empty()) {
    std::cerr << "purgelist requires --in=<snapshot file>\n";
    return 1;
  }
  SnapshotTable table;
  std::string error;
  if (!load_any(args, in, &table, &error)) {
    std::cerr << "read failed: " << error << "\n";
    return 1;
  }

  PurgePolicy policy;
  policy.age_days = static_cast<int>(args.get_int("age", 90));
  std::string exempt = args.get("exempt", "");
  std::size_t start = 0;
  while (start < exempt.size()) {
    std::size_t comma = exempt.find(',', start);
    if (comma == std::string::npos) comma = exempt.size();
    if (comma > start) {
      policy.exempt_projects.push_back(exempt.substr(start, comma - start));
    }
    start = comma + 1;
  }

  // Default "now": the newest timestamp in the snapshot (its capture day).
  std::int64_t now = args.get_int("now", 0);
  if (now == 0) {
    for (std::size_t i = 0; i < table.size(); ++i) {
      now = std::max(now, table.atime(i));
    }
  }

  const PurgeReport report = build_purge_list(table, now, policy);
  std::cout << "as of " << date_iso(now) << ", policy " << policy.age_days
            << " days: " << format_with_commas(report.candidates())
            << " purge candidates of "
            << format_with_commas(report.scanned_files) << " files ("
            << format_percent(report.candidate_fraction()) << "), "
            << report.exempted_files << " exempted\n";

  std::cout << "\nmost affected projects:\n";
  AsciiTable t({"project", "candidates"});
  for (const auto& [name, count] : top_k(report.by_project, 10)) {
    t.add_row({name, format_with_commas(count)});
  }
  t.print(std::cout);

  const std::string out = args.get("out", "");
  if (!out.empty()) {
    std::ofstream os(out, std::ios::binary);
    if (!os) {
      std::cerr << "cannot open " << out << "\n";
      return 1;
    }
    const std::uint64_t bytes = write_purge_list(table, report, os);
    std::cout << "\nwrote " << format_with_commas(bytes) << " bytes to "
              << out << "\n";
  }
  return 0;
}

/// Verifies one .scol file end to end: reads it with retrying IO, then
/// runs a full salvage decode (kSkip), which re-validates the framing and
/// every row-group checksum without aborting at the first casualty.
/// Returns true when the file is wholly intact.
bool verify_one(const std::string& file, std::string* line) {
  std::vector<std::uint8_t> bytes;
  const Status read = read_file(file, &bytes);
  if (!read.ok()) {
    *line = "UNREADABLE  " + file + ": " + read.to_string();
    return false;
  }
  SnapshotTable table;
  ScolOptions options;
  options.on_corrupt_group = CorruptGroupPolicy::kSkip;
  SalvageReport report;
  const Status s = decode_scol(bytes, &table, options, &report);
  if (!s.ok()) {
    // Header/directory level damage: nothing salvageable.
    *line = (s.code() == StatusCode::kTruncated ? "TRUNCATED   "
                                                : "CORRUPT     ") +
            file + ": " + s.to_string();
    return false;
  }
  if (!report.clean()) {
    bool truncated = false;
    for (const ScolGroupDamage& d : report.damage) {
      truncated = truncated || d.status.code() == StatusCode::kTruncated;
    }
    *line = (truncated ? "TRUNCATED   " : "CORRUPT     ") + file + ": " +
            report.summary();
    return false;
  }
  *line = "OK          " + file + ": " + std::to_string(table.size()) +
          " rows, " + std::to_string(report.groups_total) + " groups";
  return true;
}

/// The Fig 13 classifier between two snapshot files: counts and fractions
/// of the five access classes. --strategy cross-checks the join
/// implementations in the field (see README "join strategies"); all three
/// produce identical results, so a mismatch means a damaged input.
int cmd_diff(const CliArgs& args) {
  if (args.positional().size() < 3) {
    std::cerr << "diff requires two inputs: snapshot_tool diff <prev> <cur>\n";
    return 1;
  }
  const std::string& prev_file = args.positional()[1];
  const std::string& cur_file = args.positional()[2];
  const std::string name = args.get("strategy", "partitioned");
  DiffStrategy strategy;
  if (name == "hash") {
    strategy = DiffStrategy::kHash;
  } else if (name == "sortmerge") {
    strategy = DiffStrategy::kSortMerge;
  } else if (name == "partitioned") {
    strategy = DiffStrategy::kPartitioned;
  } else {
    std::cerr << "bad --strategy value (want hash|sortmerge|partitioned)\n";
    return 1;
  }

  SnapshotTable prev, cur;
  std::string error;
  if (!load_any(args, prev_file, &prev, &error)) {
    std::cerr << "cannot read " << prev_file << ": " << error << "\n";
    return 1;
  }
  if (!load_any(args, cur_file, &cur, &error)) {
    std::cerr << "cannot read " << cur_file << ": " << error << "\n";
    return 1;
  }

  const DiffResult diff = diff_snapshots_with(strategy, prev, cur);
  std::cout << "prev: " << prev_file << " (" << diff.prev_files
            << " files)\ncur:  " << cur_file << " (" << diff.cur_files
            << " files)\nstrategy: " << name << "\n";
  AsciiTable table({"class", "count", "fraction", "of"});
  const auto pct = [](double f) { return format_double(100.0 * f, 2) + "%"; };
  table.add_row({"new", std::to_string(diff.new_rows.size()),
                 pct(diff.new_fraction()), "cur files"});
  table.add_row({"deleted", std::to_string(diff.deleted_rows.size()),
                 pct(diff.deleted_fraction()), "prev files"});
  table.add_row({"readonly", std::to_string(diff.readonly_rows.size()),
                 pct(diff.readonly_fraction()), "prev files"});
  table.add_row({"updated", std::to_string(diff.updated_rows.size()),
                 pct(diff.updated_fraction()), "prev files"});
  table.add_row({"untouched", std::to_string(diff.untouched_rows.size()),
                 pct(diff.untouched_fraction()), "prev files"});
  table.print(std::cout);
  return 0;
}

int cmd_verify(const CliArgs& args) {
  const std::string dir = args.get("dir", "");
  const std::string in = args.get("in", "");
  std::vector<std::string> files;
  if (!in.empty()) {
    files.push_back(in);
  } else if (!dir.empty()) {
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir, ec)) {
      const std::string path = entry.path().string();
      if (ends_with(path, ".scol")) files.push_back(path);
    }
    if (ec) {
      std::cerr << "cannot list " << dir << ": " << ec.message() << "\n";
      return 1;
    }
    std::sort(files.begin(), files.end());
  } else {
    std::cerr << "verify requires --dir=<series directory> or --in=<file>\n";
    return 1;
  }
  if (files.empty()) {
    std::cerr << "no .scol files in " << dir << "\n";
    return 1;
  }

  std::size_t damaged = 0;
  for (const std::string& file : files) {
    std::string line;
    if (!verify_one(file, &line)) ++damaged;
    std::cout << line << "\n";
  }
  std::cout << files.size() << " file(s): " << files.size() - damaged
            << " OK, " << damaged << " damaged\n";
  return damaged == 0 ? 0 : 1;
}

/// Inspects a study-runner checkpoint section by section, mirroring
/// `verify`'s per-file discipline: every line names a section and its
/// state, and a damaged or version-skewed file exits nonzero. The runner
/// itself never fails on a bad checkpoint — it re-baselines — so this is
/// the operator's way to learn WHY a resume fell back to the full run.
int cmd_checkpoint(const CliArgs& args) {
  std::string in = args.get("in", "");
  if (in.empty() && args.positional().size() > 1) in = args.positional()[1];
  if (in.empty()) {
    std::cerr << "checkpoint requires --in=<study.sckpt>\n";
    return 1;
  }
  std::vector<std::uint8_t> bytes;
  const Status read = read_file(in, &bytes);
  if (!read.ok()) {
    std::cerr << "read failed: " << read.to_string() << "\n";
    return 1;
  }
  const CheckpointInspection inspection = inspect_checkpoint_bytes(bytes);
  for (const CheckpointSection& section : inspection.sections) {
    const char* tag = "OK          ";
    if (section.state == CheckpointSection::State::kVersionSkew) {
      tag = "VERSION-SKEW";
    } else if (section.state == CheckpointSection::State::kCorrupt) {
      tag = "CORRUPT     ";
    }
    std::cout << tag << " " << section.name;
    if (!section.detail.empty()) std::cout << ": " << section.detail;
    std::cout << "\n";
  }
  if (inspection.ok) {
    std::size_t markers = 0;
    for (const CheckpointSection& section : inspection.sections) {
      if (section.detail == "re-baseline marker") ++markers;
    }
    std::cout << in << ": checkpoint intact (" << inspection.sections.size()
              << " sections)";
    if (markers > 0) {
      // A marker means a scan-only analyzer with no serialized state:
      // the checkpoint verifies clean but a resume re-runs in full.
      std::cout << "; holds " << markers
                << " re-baseline marker(s), so a study pointed at it "
                   "re-runs in full";
    } else {
      std::cout << "; a study pointed at it will resume";
    }
    std::cout << "\n";
    return 0;
  }
  std::cout << in << ": checkpoint "
            << (inspection.version_skew ? "from another format version"
                                        : "damaged")
            << "; a study pointed at it will re-baseline with a full run\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const spider::CliArgs args(argc, argv);
  if (args.positional().empty()) {
    std::cerr
        << "usage: snapshot_tool "
           "<generate|convert|inspect|stat|purgelist|verify|checkpoint|diff> "
           "[flags]\n";
    return 1;
  }
  const std::string& command = args.positional()[0];
  if (command == "generate") return cmd_generate(args);
  if (command == "convert") return cmd_convert(args);
  if (command == "inspect") return cmd_inspect(args);
  if (command == "stat") return cmd_stat(args);
  if (command == "purgelist") return cmd_purgelist(args);
  if (command == "verify") return cmd_verify(args);
  if (command == "checkpoint") return cmd_checkpoint(args);
  if (command == "diff") return cmd_diff(args);
  std::cerr << "unknown command: " << command << "\n";
  return 1;
}
